#pragma once

/// \file hash.hpp
/// FNV-1a 64-bit hashing — the one fingerprint implementation shared by the
/// service cache keys, the bench `BENCH_<name>.json` result checksums and the
/// determinism tests.
///
/// FNV-1a is a byte-stream hash: every input kind (doubles, integers,
/// strings, raw buffers) is folded in as its constituent bytes in a fixed
/// little-endian order, so two streams agree on the hash iff they fed in
/// bit-identical data in the same order. That makes the value usable both as
/// a cache key over canonical instance bytes (collisions resolved by full
/// equality, see service/cache.hpp) and as a determinism checksum (two solver
/// runs agree iff their result fronts are bit-identical).
///
/// Known-answer vectors (tests/test_util_hash.cpp): the empty stream hashes
/// to the FNV offset basis 0xCBF29CE484222325; "a" to 0xAF63DC4C8601EC8C;
/// "foobar" to 0x85944171F73967E8.

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace relap::util {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001B3ULL;

/// Incremental FNV-1a 64-bit hasher.
class Fnv1a {
 public:
  Fnv1a() = default;
  /// Chained hashing: seed the state with a previous hash value.
  explicit Fnv1a(std::uint64_t state) : hash_(state) {}

  void add_byte(unsigned char byte) {
    hash_ ^= byte;
    hash_ *= kFnv1aPrime;
  }

  /// Folds in the 8 bytes of `v`, least-significant first (endian-stable).
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) add_byte(static_cast<unsigned char>((v >> (8 * i)) & 0xFFU));
  }

  /// Folds in the IEEE-754 bit pattern of `v` (not its numeric value): two
  /// doubles hash alike iff they are bit-identical, which is exactly the
  /// determinism contract the checksums pin. Note 0.0 and -0.0 differ.
  void add(double v) { add(std::bit_cast<std::uint64_t>(v)); }

  void add(std::string_view s) {
    for (const char c : s) add_byte(static_cast<unsigned char>(c));
  }

  [[nodiscard]] std::uint64_t value() const { return hash_; }

  /// "0x"-prefixed hex form for JSON string fields.
  [[nodiscard]] std::string hex() const {
    char buffer[24];
    std::snprintf(buffer, sizeof buffer, "0x%016llx", static_cast<unsigned long long>(hash_));
    return buffer;
  }

 private:
  std::uint64_t hash_ = kFnv1aOffsetBasis;
};

/// One-shot convenience over a byte string.
[[nodiscard]] inline std::uint64_t fnv1a(std::string_view bytes) {
  Fnv1a h;
  h.add(bytes);
  return h.value();
}

}  // namespace relap::util
