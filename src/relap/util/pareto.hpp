#pragma once

/// \file pareto.hpp
/// Pareto-front maintenance for bi-criteria (latency, failure-probability)
/// optimization. Both coordinates are minimized.
///
/// The front is kept sorted by the first coordinate; insertion removes
/// dominated points. A small tolerance treats near-equal points as equal so
/// that floating-point noise does not inflate the front.

#include <cstddef>
#include <vector>

#include "relap/util/stats.hpp"

namespace relap::util {

/// A point in (x, y) objective space with an opaque payload index that the
/// caller can use to recover the mapping which achieved the point.
struct ParetoPoint {
  double x = 0.0;
  double y = 0.0;
  std::size_t payload = 0;
};

/// True iff `a` dominates `b`: a is no worse in both coordinates and strictly
/// better (beyond tolerance) in at least one. Inline: the exhaustive driver
/// runs the front's rejection scan once per enumerated candidate.
[[nodiscard]] inline bool dominates(const ParetoPoint& a, const ParetoPoint& b,
                                    double rel_tol = 1e-9, double abs_tol = 1e-12) {
  const bool no_worse_x = a.x <= b.x || approx_equal(a.x, b.x, rel_tol, abs_tol);
  const bool no_worse_y = a.y <= b.y || approx_equal(a.y, b.y, rel_tol, abs_tol);
  if (!no_worse_x || !no_worse_y) return false;
  const bool better_x = definitely_less(a.x, b.x, rel_tol, abs_tol);
  const bool better_y = definitely_less(a.y, b.y, rel_tol, abs_tol);
  return better_x || better_y;
}

/// Minimizing Pareto front over (x, y).
class ParetoFront {
 public:
  explicit ParetoFront(double rel_tol = 1e-9, double abs_tol = 1e-12)
      : rel_tol_(rel_tol), abs_tol_(abs_tol) {}

  /// Inserts `p` unless it is dominated by (or duplicates) an existing point;
  /// removes any existing points that `p` dominates.
  /// Returns true iff the point was inserted. Inline: called once per
  /// candidate by the exhaustive enumeration hot loop, where the (usually
  /// rejecting) scan over a handful of points must not cost function calls.
  bool insert(const ParetoPoint& p) {
    for (const ParetoPoint& q : points_) {
      if (dominates(q, p, rel_tol_, abs_tol_)) return false;
      if (approx_equal(q.x, p.x, rel_tol_, abs_tol_) &&
          approx_equal(q.y, p.y, rel_tol_, abs_tol_)) {
        return false;  // duplicate within tolerance
      }
    }
    insert_admitted(p);
    return true;
  }

  /// Points sorted by increasing x (hence decreasing y).
  [[nodiscard]] const std::vector<ParetoPoint>& points() const { return points_; }

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// Smallest y over points with x <= x_cap; nullptr if none qualifies.
  /// (Answers "best reliability achievable within latency budget x_cap".)
  [[nodiscard]] const ParetoPoint* best_y_within_x(double x_cap) const;

  /// Smallest x over points with y <= y_cap; nullptr if none qualifies.
  [[nodiscard]] const ParetoPoint* best_x_within_y(double y_cap) const;

  /// True iff every point of `other` is dominated by or equal to some point
  /// of this front (i.e. this front is at least as good everywhere).
  [[nodiscard]] bool covers(const ParetoFront& other) const;

 private:
  /// Cold half of `insert`: erases points `p` dominates and splices `p` into
  /// x-sorted position. Out of line so the hot rejection scan stays small.
  void insert_admitted(const ParetoPoint& p);

  double rel_tol_;
  double abs_tol_;
  std::vector<ParetoPoint> points_;
};

}  // namespace relap::util
