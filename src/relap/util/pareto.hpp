#pragma once

/// \file pareto.hpp
/// Pareto-front maintenance for bi-criteria (latency, failure-probability)
/// optimization. Both coordinates are minimized.
///
/// The front is kept sorted by the first coordinate; insertion removes
/// dominated points. A small tolerance treats near-equal points as equal so
/// that floating-point noise does not inflate the front.

#include <cstddef>
#include <vector>

#include "relap/util/stats.hpp"

namespace relap::util {

/// A point in (x, y) objective space with an opaque payload index that the
/// caller can use to recover the mapping which achieved the point.
struct ParetoPoint {
  double x = 0.0;
  double y = 0.0;
  std::size_t payload = 0;
};

/// True iff `a` dominates `b`: a is no worse in both coordinates and strictly
/// better (beyond tolerance) in at least one.
[[nodiscard]] bool dominates(const ParetoPoint& a, const ParetoPoint& b, double rel_tol = 1e-9,
                             double abs_tol = 1e-12);

/// Minimizing Pareto front over (x, y).
class ParetoFront {
 public:
  explicit ParetoFront(double rel_tol = 1e-9, double abs_tol = 1e-12)
      : rel_tol_(rel_tol), abs_tol_(abs_tol) {}

  /// Inserts `p` unless it is dominated by (or duplicates) an existing point;
  /// removes any existing points that `p` dominates.
  /// Returns true iff the point was inserted.
  bool insert(const ParetoPoint& p);

  /// Points sorted by increasing x (hence decreasing y).
  [[nodiscard]] const std::vector<ParetoPoint>& points() const { return points_; }

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// Smallest y over points with x <= x_cap; nullptr if none qualifies.
  /// (Answers "best reliability achievable within latency budget x_cap".)
  [[nodiscard]] const ParetoPoint* best_y_within_x(double x_cap) const;

  /// Smallest x over points with y <= y_cap; nullptr if none qualifies.
  [[nodiscard]] const ParetoPoint* best_x_within_y(double y_cap) const;

  /// True iff every point of `other` is dominated by or equal to some point
  /// of this front (i.e. this front is at least as good everywhere).
  [[nodiscard]] bool covers(const ParetoFront& other) const;

 private:
  double rel_tol_;
  double abs_tol_;
  std::vector<ParetoPoint> points_;
};

}  // namespace relap::util
