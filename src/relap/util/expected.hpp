#pragma once

/// \file expected.hpp
/// A small `Expected<T>` result type.
///
/// relap does not use exceptions for control flow (see DESIGN.md §5):
/// infeasibility of an optimization problem, a malformed instance file or an
/// out-of-budget enumeration are *normal* outcomes that callers must handle.
/// `Expected<T>` carries either a value or a human-readable `Error`.
/// It intentionally implements only the small surface the library needs
/// instead of replicating `std::expected` (C++23).

#include <optional>
#include <string>
#include <utility>

#include "relap/util/assert.hpp"

namespace relap::util {

/// Error payload: a short machine-checkable code plus a human message.
struct Error {
  /// Stable identifier, e.g. "infeasible", "parse", "budget".
  std::string code;
  /// Human-readable explanation, suitable for CLI output.
  std::string message;

  [[nodiscard]] std::string to_string() const { return code + ": " + message; }
};

/// Either a value of type `T` or an `Error`.
template <typename T>
class Expected {
 public:
  /*implicit*/ Expected(T value) : value_(std::move(value)) {}
  /*implicit*/ Expected(Error error) : error_(std::move(error)) {}

  [[nodiscard]] bool has_value() const { return value_.has_value(); }
  [[nodiscard]] explicit operator bool() const { return has_value(); }

  /// Precondition: `has_value()`.
  [[nodiscard]] const T& value() const& {
    RELAP_ASSERT(value_.has_value(), error_ ? error_->to_string().c_str() : "empty Expected");
    return *value_;
  }
  [[nodiscard]] T& value() & {
    RELAP_ASSERT(value_.has_value(), error_ ? error_->to_string().c_str() : "empty Expected");
    return *value_;
  }
  [[nodiscard]] T&& take() && {
    RELAP_ASSERT(value_.has_value(), error_ ? error_->to_string().c_str() : "empty Expected");
    return std::move(*value_);
  }

  /// Precondition: `!has_value()`.
  [[nodiscard]] const Error& error() const {
    RELAP_ASSERT(error_.has_value(), "Expected holds a value, not an error");
    return *error_;
  }

  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] const T& operator*() const { return value(); }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Convenience factories.
[[nodiscard]] Error make_error(std::string code, std::string message);
[[nodiscard]] Error infeasible(std::string message);
[[nodiscard]] Error budget_exceeded(std::string message);
[[nodiscard]] Error parse_error(int line, std::string message);

}  // namespace relap::util
