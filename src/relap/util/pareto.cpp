#include "relap/util/pareto.hpp"

#include <algorithm>

namespace relap::util {

void ParetoFront::insert_admitted(const ParetoPoint& p) {
  std::erase_if(points_, [&](const ParetoPoint& q) { return dominates(p, q, rel_tol_, abs_tol_); });
  const auto pos = std::lower_bound(points_.begin(), points_.end(), p,
                                    [](const ParetoPoint& a, const ParetoPoint& b) { return a.x < b.x; });
  points_.insert(pos, p);
}

const ParetoPoint* ParetoFront::best_y_within_x(double x_cap) const {
  // Points are sorted by x ascending and (being a front) y descending, so the
  // best-y feasible point is the last one with x <= x_cap.
  const ParetoPoint* best = nullptr;
  for (const ParetoPoint& p : points_) {
    if (p.x <= x_cap || approx_equal(p.x, x_cap, rel_tol_, abs_tol_)) {
      if (best == nullptr || p.y < best->y) best = &p;
    }
  }
  return best;
}

const ParetoPoint* ParetoFront::best_x_within_y(double y_cap) const {
  const ParetoPoint* best = nullptr;
  for (const ParetoPoint& p : points_) {
    if (p.y <= y_cap || approx_equal(p.y, y_cap, rel_tol_, abs_tol_)) {
      if (best == nullptr || p.x < best->x) best = &p;
    }
  }
  return best;
}

bool ParetoFront::covers(const ParetoFront& other) const {
  for (const ParetoPoint& q : other.points_) {
    const bool matched = std::any_of(points_.begin(), points_.end(), [&](const ParetoPoint& p) {
      const bool equal = approx_equal(p.x, q.x, rel_tol_, abs_tol_) &&
                         approx_equal(p.y, q.y, rel_tol_, abs_tol_);
      return equal || dominates(p, q, rel_tol_, abs_tol_);
    });
    if (!matched) return false;
  }
  return true;
}

}  // namespace relap::util
