#pragma once

/// \file strings.hpp
/// Minimal string helpers shared by the instance parser and CSV writers.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace relap::util {

/// Removes leading/trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits on any run of spaces/tabs; never returns empty tokens.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// Splits on a single character delimiter; keeps empty tokens.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char delim);

/// Strict double parser: the whole token must be consumed.
[[nodiscard]] std::optional<double> parse_double(std::string_view token);

/// Strict non-negative integer parser.
[[nodiscard]] std::optional<std::size_t> parse_size(std::string_view token);

/// Fixed-notation formatting with the given number of decimals.
[[nodiscard]] std::string format_fixed(double value, int decimals);

/// Shortest round-trip-ish representation used in instance files.
[[nodiscard]] std::string format_double(double value);

/// Joins tokens with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& tokens, std::string_view sep);

}  // namespace relap::util
