#pragma once

/// \file bytes.hpp
/// Fixed-width little-endian byte serialization, shared by every binary
/// encoder in the tree: the canonical instance key bytes
/// (io::append_instance_key_bytes), the broker's full cache keys and the
/// service snapshot sections (service/snapshot.hpp).
///
/// All writers emit little-endian regardless of host byte order (values are
/// decomposed by shifting, never by memcpy of native representations), so
/// canonical hashes and snapshots are portable across hosts. Doubles travel
/// as the little-endian bytes of their IEEE-754 bit pattern: two values
/// serialize identically iff they are bit-identical — the same contract the
/// FNV-1a checksums pin (util/hash.hpp). The byte layout is known-answer
/// tested in tests/test_util_bytes.cpp; changing it invalidates committed
/// snapshots and must bump kSnapshotFormatVersion.
///
/// `ByteReader` is the decoding side: a cursor over a byte string whose
/// every read is bounds-checked and returns false on truncation instead of
/// reading past the end — binary input is runtime data, never trusted.

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace relap::util::bytes {

inline void append_u32_le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFU));
}

inline void append_u64_le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFU));
}

/// The IEEE-754 bit pattern of `v`, least-significant byte first.
inline void append_double_le(std::string& out, double v) {
  append_u64_le(out, std::bit_cast<std::uint64_t>(v));
}

inline void append_doubles_le(std::string& out, std::span<const double> values) {
  for (const double v : values) append_double_le(out, v);
}

/// Length-prefixed byte string: u64 size, then the raw bytes.
inline void append_bytes(std::string& out, std::string_view bytes) {
  append_u64_le(out, bytes.size());
  out.append(bytes);
}

/// Bounds-checked little-endian decoder over a byte string. Every `read_*`
/// either consumes exactly its fixed width (or declared length) and returns
/// true, or leaves the cursor untouched and returns false — a false return
/// means the input is truncated relative to the declared layout.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - cursor_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }
  [[nodiscard]] std::size_t cursor() const { return cursor_; }

  [[nodiscard]] bool read_u32_le(std::uint32_t& out) {
    if (remaining() < 4) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes_[cursor_ + i]))
             << (8 * i);
    }
    cursor_ += 4;
    return true;
  }

  [[nodiscard]] bool read_u64_le(std::uint64_t& out) {
    if (remaining() < 8) return false;
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[cursor_ + i]))
             << (8 * i);
    }
    cursor_ += 8;
    return true;
  }

  [[nodiscard]] bool read_double_le(double& out) {
    std::uint64_t bits = 0;
    if (!read_u64_le(bits)) return false;
    out = std::bit_cast<double>(bits);
    return true;
  }

  /// A view of the next `size` raw bytes (no length prefix).
  [[nodiscard]] bool read_raw(std::size_t size, std::string_view& out) {
    if (remaining() < size) return false;
    out = bytes_.substr(cursor_, size);
    cursor_ += size;
    return true;
  }

  /// A u64-length-prefixed byte string written by `append_bytes`.
  [[nodiscard]] bool read_bytes(std::string_view& out) {
    const std::size_t start = cursor_;
    std::uint64_t size = 0;
    if (!read_u64_le(size)) return false;
    if (size > remaining()) {
      cursor_ = start;
      return false;
    }
    return read_raw(static_cast<std::size_t>(size), out);
  }

 private:
  std::string_view bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace relap::util::bytes
