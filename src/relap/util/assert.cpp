#include "relap/util/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace relap::util {

void assert_fail(std::string_view condition, std::string_view message, std::string_view file,
                 int line) {
  std::fprintf(stderr, "relap: contract violation at %.*s:%d\n  condition: %.*s\n  message:   %.*s\n",
               static_cast<int>(file.size()), file.data(), line, static_cast<int>(condition.size()),
               condition.data(), static_cast<int>(message.size()), message.data());
  std::fflush(stderr);
  std::abort();
}

}  // namespace relap::util
