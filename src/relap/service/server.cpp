#include "relap/service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <istream>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include "relap/io/instance_format.hpp"
#include "relap/service/faultpoint.hpp"
#include "relap/util/hash.hpp"
#include "relap/util/strings.hpp"

namespace relap::service {

namespace {

/// One response line must stay one line: protocol framing is '\n'.
std::string flatten(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

/// `err <seq> <code> <message>`: seq correlates the error with the input
/// line that caused it (0 = a server-level error outside any session line).
void emit_err_line(std::string& out, std::uint64_t seq, std::string_view code,
                   std::string_view message) {
  out += "err ";
  out += std::to_string(seq);
  out += ' ';
  out += code;
  out += ' ';
  out += flatten(message);
  out += '\n';
}

/// Algorithm names carry spaces ("algorithm-1 (fully homogeneous)"); response
/// fields are whitespace-delimited, so spaces become underscores on the wire.
std::string token_safe(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == ' ' || c == '\t') c = '_';
  }
  return out;
}

std::string format_ms(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f", seconds * 1e3);
  return buffer;
}

}  // namespace

Session::Session(Broker& broker, Options options) : broker_(broker), options_(options) {}

void Session::emit_err(std::string& out, std::string_view code, std::string_view message) const {
  emit_err_line(out, seq_, code, message);
}

void Session::emit_err(std::string& out, const util::Error& error) const {
  emit_err_line(out, seq_, error.code, error.message);
}

bool Session::handle_line(std::string_view line, std::string& out) {
  const std::string_view trimmed = util::trim(line);
  if (trimmed.empty() || trimmed.front() == '#') return true;
  ++seq_;
  if (in_block_) {
    handle_block_line(trimmed, out);
  } else {
    handle_command(trimmed, out);
  }
  return !closed_;
}

void Session::handle_command(std::string_view line, std::string& out) {
  const std::vector<std::string_view> tokens = util::split_ws(line);
  const std::string_view command = tokens.front();

  if (command == "ping") {
    out += "ok pong\n";
    return;
  }
  if (command == "quit") {
    out += "ok bye\n";
    closed_ = true;
    return;
  }
  if (command == "shutdown") {
    out += "ok shutdown\n";
    closed_ = true;
    shutdown_ = true;
    return;
  }
  if (command == "stats") {
    out += "ok stats ";
    out += broker_.metrics_json();
    out += '\n';
    return;
  }
  if (command == "instance") {
    if (tokens.size() != 2) {
      emit_err(out, "protocol", "usage: instance <name>");
      return;
    }
    block_name_ = std::string(tokens[1]);
    if (!instances_.contains(block_name_) && instances_.size() >= options_.max_instances) {
      emit_err(out, "oversized",
               "instance table full (" + std::to_string(options_.max_instances) + " names)");
      return;
    }
    block_instance_ = InstanceData{};
    block_has_uniform_links_ = false;
    block_uniform_links_ = 0.0;
    in_block_ = true;
    return;
  }
  if (command == "drop") {
    if (tokens.size() != 2) {
      emit_err(out, "protocol", "usage: drop <name>");
      return;
    }
    if (instances_.erase(std::string(tokens[1])) == 0) {
      emit_err(out, "protocol", "unknown instance '" + std::string(tokens[1]) + "'");
      return;
    }
    out += "ok drop ";
    out += tokens[1];
    out += '\n';
    return;
  }
  if (command == "solve") {
    handle_solve(line.substr(command.size()), out);
    return;
  }
  if (command == "snapshot") {
    handle_snapshot(line.substr(command.size()), out);
    return;
  }
  if (command == "end" || command == "input" || command == "stage" || command == "proc" ||
      command == "links") {
    emit_err(out, "protocol",
             "'" + std::string(command) + "' is only valid inside an instance block");
    return;
  }
  emit_err(out, "protocol", "unknown command '" + std::string(command) + "'");
}

void Session::handle_block_line(std::string_view line, std::string& out) {
  const std::vector<std::string_view> tokens = util::split_ws(line);
  const std::string_view command = tokens.front();

  if (command == "end") {
    in_block_ = false;
    const std::size_t m = block_instance_.processors.size();
    for (std::size_t i = 0; i < m; ++i) {
      LabeledProcessor& proc = block_instance_.processors[i];
      if (proc.links.empty()) {
        proc.links.assign(m, block_has_uniform_links_ ? block_uniform_links_ : 0.0);
      } else if (proc.links.size() != m) {
        emit_err(out, "protocol",
                 "proc " + std::to_string(i) + " has " + std::to_string(proc.links.size()) +
                     " link entries, expected " + std::to_string(m));
        return;
      }
    }
    out += "ok instance ";
    out += block_name_;
    out += " stages=" + std::to_string(block_instance_.stages.size());
    out += " processors=" + std::to_string(m);
    out += '\n';
    instances_[block_name_] = std::move(block_instance_);
    block_instance_ = InstanceData{};
    return;
  }
  if (command == "input") {
    const std::optional<double> value =
        tokens.size() == 2 ? util::parse_double(tokens[1]) : std::nullopt;
    if (!value) {
      emit_err(out, "protocol", "usage: input <data-size>");
      return;
    }
    block_instance_.input_data = *value;
    return;
  }
  if (command == "stage") {
    if (block_instance_.stages.size() >= options_.max_stage_records) {
      emit_err(out, "oversized",
               "too many stage records (wire cap " + std::to_string(options_.max_stage_records) +
                   ")");
      return;
    }
    const std::optional<std::size_t> position =
        tokens.size() == 4 ? util::parse_size(tokens[1]) : std::nullopt;
    const std::optional<double> work =
        tokens.size() == 4 ? util::parse_double(tokens[2]) : std::nullopt;
    const std::optional<double> output =
        tokens.size() == 4 ? util::parse_double(tokens[3]) : std::nullopt;
    if (!position || !work || !output) {
      emit_err(out, "protocol", "usage: stage <position> <work> <output-data>");
      return;
    }
    block_instance_.stages.push_back(LabeledStage{*position, *work, *output});
    return;
  }
  if (command == "proc") {
    if (block_instance_.processors.size() >= options_.max_processor_records) {
      emit_err(out, "oversized",
               "too many processor records (wire cap " +
                   std::to_string(options_.max_processor_records) + ")");
      return;
    }
    if (tokens.size() < 5) {
      emit_err(out, "protocol", "usage: proc <speed> <fp> <in-bw> <out-bw> [links...]");
      return;
    }
    LabeledProcessor proc;
    double* const fields[4] = {&proc.speed, &proc.failure_prob, &proc.in_bandwidth,
                               &proc.out_bandwidth};
    for (std::size_t i = 0; i < 4; ++i) {
      const std::optional<double> value = util::parse_double(tokens[i + 1]);
      if (!value) {
        emit_err(out, "protocol", "unparseable proc field '" + std::string(tokens[i + 1]) + "'");
        return;
      }
      *fields[i] = *value;
    }
    if (tokens.size() - 5 > options_.max_processor_records) {
      emit_err(out, "oversized", "links row exceeds the wire processor cap");
      return;
    }
    for (std::size_t i = 5; i < tokens.size(); ++i) {
      const std::optional<double> value = util::parse_double(tokens[i]);
      if (!value) {
        emit_err(out, "protocol", "unparseable link bandwidth '" + std::string(tokens[i]) + "'");
        return;
      }
      proc.links.push_back(*value);
    }
    block_instance_.processors.push_back(std::move(proc));
    return;
  }
  if (command == "links") {
    const std::optional<double> value =
        tokens.size() == 2 ? util::parse_double(tokens[1]) : std::nullopt;
    if (!value) {
      emit_err(out, "protocol", "usage: links <bandwidth>");
      return;
    }
    block_has_uniform_links_ = true;
    block_uniform_links_ = *value;
    return;
  }
  emit_err(out, "protocol",
           "unknown instance-block command '" + std::string(command) + "' (expecting end)");
}

void Session::handle_solve(std::string_view args, std::string& out) {
  const std::vector<std::string_view> tokens = util::split_ws(args);
  if (tokens.empty()) {
    emit_err(out, "protocol", "usage: solve <name> [obj=|threshold=|method=|budget=|sweep=]");
    return;
  }
  const auto it = instances_.find(std::string(tokens.front()));
  if (it == instances_.end()) {
    emit_err(out, "protocol", "unknown instance '" + std::string(tokens.front()) + "'");
    return;
  }

  SolveRequest request;
  request.instance = it->second;
  request.objective = Objective::ParetoFront;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 == token.size()) {
      emit_err(out, "protocol", "malformed knob '" + std::string(token) + "' (want key=value)");
      return;
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "obj") {
      if (value == "pareto") {
        request.objective = Objective::ParetoFront;
      } else if (value == "minfp") {
        request.objective = Objective::MinFpForLatency;
      } else if (value == "minlat") {
        request.objective = Objective::MinLatencyForFp;
      } else {
        emit_err(out, "protocol", "unknown objective '" + std::string(value) + "'");
        return;
      }
    } else if (key == "threshold") {
      const std::optional<double> parsed = util::parse_double(value);
      if (!parsed) {
        emit_err(out, "protocol", "unparseable threshold '" + std::string(value) + "'");
        return;
      }
      request.threshold = *parsed;
    } else if (key == "method") {
      if (value == "auto") {
        request.method = algorithms::Method::Auto;
      } else if (value == "exact") {
        request.method = algorithms::Method::Exact;
      } else if (value == "heuristic") {
        request.method = algorithms::Method::Heuristic;
      } else if (value == "exhaustive") {
        request.method = algorithms::Method::Exhaustive;
      } else {
        emit_err(out, "protocol", "unknown method '" + std::string(value) + "'");
        return;
      }
    } else if (key == "budget") {
      const std::optional<std::size_t> parsed = util::parse_size(value);
      if (!parsed) {
        emit_err(out, "protocol", "unparseable budget '" + std::string(value) + "'");
        return;
      }
      request.max_evaluations = *parsed;
    } else if (key == "sweep") {
      const std::optional<std::size_t> parsed = util::parse_size(value);
      if (!parsed) {
        emit_err(out, "protocol", "unparseable sweep '" + std::string(value) + "'");
        return;
      }
      request.pareto_thresholds = *parsed;
    } else {
      emit_err(out, "protocol", "unknown knob '" + std::string(key) + "'");
      return;
    }
  }

  const util::Expected<Reply> reply =
      options_.batch_solves ? broker_.solve_batched(request) : broker_.solve(request);
  if (!reply.has_value()) {
    emit_err(out, reply.error());
    return;
  }

  out += "ok solve name=";
  out += tokens.front();
  out += reply->cache_hit ? " cache=hit" : " cache=miss";
  // Degrade-path provenance: only present when the broker answered with the
  // heuristic fallback, so undegraded responses keep their exact old shape.
  if (reply->degraded) out += " degraded=1";
  out += reply->exact ? " exact=1" : " exact=0";
  out += " algorithm=" + token_safe(reply->algorithm);
  out += " points=" + std::to_string(reply->front.size());
  out += " front=" + util::Fnv1a(front_checksum(reply->front)).hex();
  out += " canonical=" + util::Fnv1a(reply->canonical_hash).hex();
  out += " solve_ms=" + format_ms(reply->solve_seconds);
  out += '\n';
  out += "trace ";
  out += reply->spans.to_json();
  out += '\n';
  for (std::size_t i = 0; i < reply->front.size(); ++i) {
    const algorithms::ParetoSolution& point = reply->front[i];
    out += "point " + std::to_string(i);
    out += " latency=" + util::format_double(point.latency);
    out += " fp=" + util::format_double(point.failure_probability);
    out += " mapping=" + io::format_mapping(point.mapping);
    out += '\n';
  }
  out += "done\n";
}

void Session::handle_snapshot(std::string_view args, std::string& out) {
  const std::vector<std::string_view> tokens = util::split_ws(args);
  if (tokens.size() != 2 || (tokens[0] != "save" && tokens[0] != "load")) {
    emit_err(out, "protocol", "usage: snapshot save|load <path>");
    return;
  }
  const std::string path(tokens[1]);
  const util::Expected<SnapshotStats> stats =
      tokens[0] == "save" ? broker_.save_snapshot(path) : broker_.load_snapshot(path);
  if (!stats.has_value()) {
    emit_err(out, stats.error());
    return;
  }
  out += "ok snapshot ";
  out += tokens[0];
  out += " entries=" + std::to_string(stats->entries);
  out += " bytes=" + std::to_string(stats->bytes);
  out += '\n';
}

bool serve_stream(Broker& broker, std::istream& in, std::ostream& out,
                  Session::Options options) {
  Session session(broker, options);
  std::string line;
  std::string response;
  bool alive = true;
  while (alive && std::getline(in, line)) {
    response.clear();
    alive = session.handle_line(line, response);
    out << response;
    out.flush();
  }
  return session.shutdown_requested();
}

TcpServer::TcpServer(TcpServer&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {
  stop_.store(other.stop_.load(std::memory_order_acquire), std::memory_order_release);
}

TcpServer& TcpServer::operator=(TcpServer&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
    stop_.store(other.stop_.load(std::memory_order_acquire), std::memory_order_release);
  }
  return *this;
}

TcpServer::~TcpServer() {
  if (fd_ >= 0) ::close(fd_);
}

util::Expected<TcpServer> TcpServer::bind_localhost(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Error{"io", std::string("socket: ") + std::strerror(errno)};
  }
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0 ||
      ::listen(fd, 16) != 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return util::Error{"io", "bind 127.0.0.1:" + std::to_string(port) + ": " + message};
  }
  socklen_t length = sizeof address;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &length) != 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return util::Error{"io", std::string("getsockname: ") + message};
  }

  TcpServer server;
  server.fd_ = fd;
  server.port_ = ntohs(address.sin_port);
  return server;
}

namespace {

/// How often blocked reads re-check the stop flag and the idle clock.
constexpr int kPollSliceMs = 50;

/// Writes the whole buffer, retrying short sends (the "server.short_write"
/// fault point forces 1-byte sends to keep that retry loop tested). With a
/// write timeout, a peer that stops draining forfeits the connection. False
/// on a dead or stuck peer — the session then just winds down.
bool send_all(int fd, std::string_view bytes, int write_timeout_ms) {
  while (!bytes.empty()) {
    if (write_timeout_ms > 0) {
      pollfd pfd{fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, write_timeout_ms);
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) return false;  // timeout or poll failure
    }
    const std::size_t chunk =
        faultpoint::should_fail("server.short_write") ? 1 : bytes.size();
    const ssize_t sent = ::send(fd, bytes.data(), chunk, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix(static_cast<std::size_t>(sent));
  }
  return true;
}

}  // namespace

void TcpServer::serve_connection(Broker& broker, int conn, const ServerOptions& options) {
  Session session(broker, options.session);
  std::string pending;
  std::string response;
  char buffer[4096];
  bool alive = true;
  bool peer_gone = false;
  int idle_ms = 0;
  while (alive) {
    if (stop_requested()) {
      // Graceful drain: the in-flight line (if any) already got its reply;
      // anything further is refused like the broker refuses late work.
      (void)send_all(conn, "err 0 shutting-down server is draining\n", options.write_timeout_ms);
      break;
    }
    // Block in short slices so the idle reaper and stop requests are honored
    // without extra machinery.
    pollfd pfd{conn, POLLIN, 0};
    const int slice = options.read_timeout_ms > 0
                          ? std::min(kPollSliceMs, options.read_timeout_ms)
                          : kPollSliceMs;
    const int ready = ::poll(&pfd, 1, slice);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      idle_ms += slice;
      if (options.read_timeout_ms > 0 && idle_ms >= options.read_timeout_ms) {
        (void)send_all(conn, "err 0 timeout connection idle past its read timeout, closing\n",
                       options.write_timeout_ms);
        break;
      }
      continue;
    }
    idle_ms = 0;
    const ssize_t received = ::recv(conn, buffer, sizeof buffer, 0);
    if (received < 0 && errno == EINTR) continue;
    if (received <= 0) {
      peer_gone = received == 0 && pending.empty();
      break;
    }
    pending.append(buffer, static_cast<std::size_t>(received));
    std::size_t start = 0;
    for (std::size_t newline = pending.find('\n', start);
         alive && newline != std::string::npos; newline = pending.find('\n', start)) {
      std::string_view line(pending.data() + start, newline - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);  // telnet friendliness
      response.clear();
      alive = session.handle_line(line, response);
      if (!send_all(conn, response, options.write_timeout_ms)) alive = false;
      start = newline + 1;
    }
    pending.erase(0, start);
  }
  // A final unterminated line (EOF mid-line) still gets served before the
  // peer goes away.
  if (alive && !peer_gone && !stop_requested() && !pending.empty()) {
    response.clear();
    (void)session.handle_line(pending, response);
    (void)send_all(conn, response, options.write_timeout_ms);
  }
  ::close(conn);
  if (session.shutdown_requested()) {
    // Session-issued `shutdown` drains the whole service: the broker starts
    // refusing new work and the accept loop winds down.
    broker.begin_shutdown();
    request_stop();
  }
}

std::size_t TcpServer::serve(Broker& broker, const ServerOptions& options) {
  struct ConnectionCount {
    std::mutex mutex;
    std::size_t active = 0;
  } connections;
  std::vector<std::thread> threads;
  std::size_t served = 0;
  while (!stop_requested() && fd_ >= 0) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;  // request_stop()'s socket shutdown lands here
    }
    if (stop_requested()) {
      (void)send_all(conn, "err 0 shutting-down server is draining\n", options.write_timeout_ms);
      ::close(conn);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(connections.mutex);
      if (connections.active >= options.max_connections) {
        // Connection-level load shedding: refuse instead of queueing
        // unboundedly behind busy sessions.
        (void)send_all(conn,
                       "err 0 overloaded connection limit (" +
                           std::to_string(options.max_connections) + ") reached\n",
                       options.write_timeout_ms);
        ::close(conn);
        continue;
      }
      ++connections.active;
    }
    ++served;
    threads.emplace_back([this, &broker, &options, &connections, conn] {
      serve_connection(broker, conn, options);
      std::lock_guard<std::mutex> lock(connections.mutex);
      --connections.active;
    });
  }
  for (std::thread& thread : threads) thread.join();
  return served;
}

std::size_t TcpServer::serve(Broker& broker, Session::Options options) {
  // Compatibility shape: direct (non-batched) solves, default knobs.
  ServerOptions server_options;
  server_options.session = options;
  return serve(broker, server_options);
}

void TcpServer::request_stop() {
  stop_.store(true, std::memory_order_release);
  // Wake the blocked accept(); the listener stays bound (port() remains
  // valid) but no further connections are accepted.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace relap::service
