#pragma once

/// \file metrics.hpp
/// Lock-cheap observability for the solver service: counters and fixed
/// log-spaced latency histograms, aggregated into a `ServiceMetrics`
/// registry the broker updates on every request and exports as JSON.
///
/// Everything is a relaxed atomic — recording a sample is one or two
/// `fetch_add`s, no locks, so instrumentation cannot serialize the batch
/// dispatch it observes. The counters are monotonically increasing totals;
/// readers (`stats`/JSON export) see a near-consistent snapshot, which is
/// the usual contract for service metrics (individual counters are exact,
/// cross-counter invariants may be one in-flight request off).
///
/// Histogram buckets are log2-spaced: bucket i counts samples in
/// [2^(i-20), 2^(i-19)) seconds, i in 0..29 — ~1 microsecond up to ~512
/// seconds, with the first and last buckets absorbing under- and overflow.
/// Fixed buckets (rather than adaptive ones) keep `record()` branch-free
/// cheap and make exported histograms comparable across runs and hosts.
///
/// The per-request view of the same spans (queue wait, canonicalize, cache
/// probe, solve, denormalize) travels in `Reply::spans` — see request.hpp.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

namespace relap::service {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Histogram over seconds with the fixed log2-spaced buckets described in
/// the file comment, plus an exact sample count and a nanosecond-resolution
/// running total.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 30;
  /// log2 of the upper bound of bucket 0: bucket i covers
  /// [2^(i + kMinExponent), 2^(i + 1 + kMinExponent)).
  static constexpr int kMinExponent = -20;

  /// Upper bound (exclusive, seconds) of bucket `i`; the last bucket's bound
  /// is conceptually +inf but reported as its finite log boundary.
  [[nodiscard]] static double bucket_upper_bound(int i);

  /// Bucket index for a sample: floor(log2 seconds) shifted and clamped.
  /// Non-positive and non-finite samples land in bucket 0.
  [[nodiscard]] static int bucket_index(double seconds);

  void record(double seconds);

  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double total_seconds() const {
    return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  [[nodiscard]] std::uint64_t bucket_count(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }

  /// {"count":N,"total_seconds":S,"buckets":[{"le":B,"count":C},...]} with
  /// zero-count buckets omitted.
  [[nodiscard]] std::string to_json() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
};

/// The broker's metric registry: request/solve counters plus one histogram
/// per request lifecycle span. Cache hit/miss/eviction counts live in
/// `FrontCache` (single source of truth) and are merged into the JSON
/// export by `Broker::metrics_json`.
struct ServiceMetrics {
  Counter requests_total;       ///< requests entering admission
  Counter rejected_total;       ///< structured admission rejections
  Counter batches_total;        ///< solve_batch invocations (solve() counts too)
  Counter deduped_total;        ///< batch members served by another member's solve
  Counter solves_total;         ///< cache-miss dispatches into the solver stack
  Counter solve_errors_total;   ///< infeasible/budget outcomes of those solves
  Counter deadline_exceeded_total;  ///< requests rejected past their wall-clock budget
  Counter cancelled_total;          ///< solves cooperatively cancelled mid-flight
  Counter shed_total;               ///< queued requests shed by admission control
  Counter degraded_total;           ///< replies served by the heuristic degrade path
  Counter snapshot_saves;
  Counter snapshot_loads;
  Counter snapshot_entries_saved;
  Counter snapshot_entries_loaded;
  /// Startup-recovery side of the write-ahead journal (service/journal.hpp);
  /// the live append/fsync/rotation counters stay in `JournalStats` (single
  /// source of truth) and `Broker::metrics_json` merges both.
  Counter journal_records_replayed;        ///< intact records re-inserted on recovery
  Counter journal_records_discarded_torn;  ///< torn tails dropped on recovery
  Gauge recovery_seconds;                  ///< wall time of the last recover()

  LatencyHistogram queue_wait;    ///< submit() -> drain() dispatch
  LatencyHistogram canonicalize;  ///< admission + canonicalization
  LatencyHistogram cache_probe;   ///< memo-cache lookup
  LatencyHistogram solve;         ///< solver dispatch (misses only)
  LatencyHistogram denormalize;   ///< reply construction
  LatencyHistogram request;       ///< whole per-request pipeline

  /// JSON object with the counters and histograms above (no cache section).
  [[nodiscard]] std::string to_json() const;
};

}  // namespace relap::service
