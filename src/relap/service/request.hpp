#pragma once

/// \file request.hpp
/// Request/response types of the solver service (see broker.hpp for the
/// serving loop that consumes them).
///
/// A `SolveRequest` wraps one *instance presentation* plus an objective,
/// scheduling metadata (priority, deadline) and a per-request evaluation
/// budget. The instance is carried as raw labeled records (`InstanceData`)
/// rather than constructed `Pipeline`/`Platform` objects on purpose: those
/// constructors treat malformed input as a programming error and abort,
/// while a multi-tenant broker must reject malformed requests gracefully
/// with a structured `util::Expected` error. Validation happens inside
/// `service::canonicalize` before any library type is constructed.
///
/// Labeling model: a stage record carries its semantic pipeline `position`
/// (stage order is meaningful — a pipeline is a chain), so stage records may
/// arrive in any storage order. Processor records have no semantic order at
/// all; their storage index *is* their caller-visible label, and replica
/// groups in a `Reply` use those indices. Two presentations of the same
/// instance that differ only by record order (and/or an exact power-of-two
/// unit rescaling) canonicalize to bit-identical canonical forms — the
/// property the broker's memo cache keys on.

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "relap/algorithms/solve.hpp"

namespace relap::service {

/// One pipeline stage as presented by a caller.
struct LabeledStage {
  /// Semantic position in the chain: 0-based, must form a permutation of
  /// 0..n-1 across the request's records.
  std::size_t position = 0;
  /// Computation amount w of the stage.
  double work = 0.0;
  /// Size of the data the stage writes (delta_{position+1}).
  double output_data = 0.0;
};

/// One processor as presented by a caller. The record's index in
/// `InstanceData::processors` is the caller-visible processor label.
struct LabeledProcessor {
  double speed = 0.0;
  double failure_prob = 0.0;
  double in_bandwidth = 0.0;   ///< link from P_in
  double out_bandwidth = 0.0;  ///< link to P_out
  /// links[j]: bandwidth to the processor stored at index j (same storage
  /// order as `InstanceData::processors`); links[self] is ignored.
  std::vector<double> links;
};

/// A raw, unvalidated instance presentation.
struct InstanceData {
  /// Size of the external input delta_0 (read by the position-0 stage).
  double input_data = 0.0;
  std::vector<LabeledStage> stages;
  std::vector<LabeledProcessor> processors;

  /// Presentation of an already-validated library instance (stage records in
  /// position order, processor records in platform id order).
  [[nodiscard]] static InstanceData from(const pipeline::Pipeline& pipeline,
                                         const platform::Platform& platform);

  /// The same instance with records shuffled: the record stored at index i of
  /// the result is this instance's record `stage_order[i]` /
  /// `processor_order[i]` (link columns reindexed to match). Both arguments
  /// must be permutations. Semantics are unchanged — stage positions travel
  /// with their records, and processor identity follows the record.
  [[nodiscard]] InstanceData relabeled(std::span<const std::size_t> stage_order,
                                       std::span<const std::size_t> processor_order) const;

  /// The same problem expressed in different units: work values scale by
  /// `work_factor`, data values by `data_factor`, and the clock by
  /// `time_factor` (speeds scale by work_factor * time_factor, bandwidths by
  /// data_factor * time_factor; latencies of the scaled instance equal the
  /// original's divided by time_factor). For exact power-of-two factors the
  /// transformation is bit-exact and the scaled instance canonicalizes to
  /// the same canonical form as the original.
  [[nodiscard]] InstanceData scaled(double work_factor, double data_factor,
                                    double time_factor) const;
};

/// What the caller wants solved.
enum class Objective {
  MinFpForLatency,   ///< minimize FP subject to latency <= threshold
  MinLatencyForFp,   ///< minimize latency subject to FP <= threshold
  ParetoFront,       ///< the full latency/FP front (threshold ignored)
};

[[nodiscard]] std::string to_string(Objective objective);

/// One unit of work for the broker.
struct SolveRequest {
  InstanceData instance;
  Objective objective = Objective::MinFpForLatency;
  /// Latency cap (caller units) or FP cap, per the objective.
  double threshold = 0.0;
  /// Scheduling priority: higher values are dispatched earlier in a batch.
  int priority = 0;
  /// Wall-clock budget in **seconds**, measured from `submit()` (or from
  /// dispatch for a direct `solve`). Besides ordering requests within a
  /// priority level (tighter first), the deadline is enforced: a request
  /// whose budget is already spent when its batch dispatches is rejected
  /// with code "deadline-exceeded" (deadline 0 deterministically expires),
  /// and a running solve is cooperatively cancelled once the tightest
  /// deadline in its dedup group passes. Cancellation never alters a result:
  /// a cancelled solve is an error and its partial work is discarded, so
  /// every *completed* reply keeps the bit-identical determinism contract.
  /// +inf (the default) means no deadline; NaN and negative values are
  /// rejected at admission with code "malformed".
  double deadline = std::numeric_limits<double>::infinity();
  /// Solver selection, as in algorithms::SolveOptions.
  algorithms::Method method = algorithms::Method::Auto;
  /// Per-request evaluation budget: both the auto exhaustive/heuristic
  /// switch point and the exhaustive enumeration cap. Oversized exhaustive
  /// requests fail fast with a "budget" error (the upfront saturation-aware
  /// count decision in exhaustive.hpp) instead of burning the budget.
  std::uint64_t max_evaluations = 2'000'000;
  /// Threshold count for heuristic ParetoFront sweeps (>= 2).
  std::size_t pareto_thresholds = 24;
};

/// Wall-clock breakdown of one request's trip through the broker — the
/// per-request twin of the aggregate histograms in metrics.hpp. All values
/// are seconds; spans that did not occur (queue wait on a direct `solve`,
/// solve on a cache hit) are 0.
struct TraceSpans {
  double queue_wait_seconds = 0.0;    ///< submit() -> batch dispatch
  double canonicalize_seconds = 0.0;  ///< admission + canonicalization
  double cache_probe_seconds = 0.0;   ///< memo-cache lookup
  double solve_seconds = 0.0;         ///< solver dispatch (0 on hits)
  double denormalize_seconds = 0.0;   ///< reply construction

  /// One-line JSON object, e.g. {"queue_wait_s":0,"canonicalize_s":1e-06,...}.
  [[nodiscard]] std::string to_json() const;
};

/// A successful reply. Error replies (malformed / oversized / infeasible /
/// budget) travel as `util::Expected` errors instead.
struct Reply {
  /// Non-dominated solutions sorted by increasing latency, in the caller's
  /// labeling and units. Single-objective requests carry exactly one point.
  std::vector<algorithms::ParetoSolution> front;
  /// Provenance: algorithm that produced the front and whether it is exact.
  std::string algorithm;
  bool exact = false;
  /// True iff the front came out of the solved-front memo cache.
  bool cache_hit = false;
  /// True iff this reply was served by the degrade path: the exact solve ran
  /// out of deadline and the broker (configured with `degrade_on_deadline`)
  /// answered with a fast heuristic front instead. Degraded fronts always
  /// carry `exact == false` and are never cached.
  bool degraded = false;
  /// Wall seconds spent solving (~0 for cache hits).
  double solve_seconds = 0.0;
  /// FNV-1a hash of the canonical instance form — equal across relabelings
  /// and power-of-two rescalings of the same instance.
  std::uint64_t canonical_hash = 0;
  /// Wall-clock trace of this request's lifecycle spans (solve_seconds
  /// above equals spans.solve_seconds; it predates the trace and stays for
  /// compatibility).
  TraceSpans spans;

  /// The single solution of a single-objective reply.
  [[nodiscard]] const algorithms::ParetoSolution& best() const { return front.front(); }
};

/// Label-independent FNV-1a fingerprint of a front: size, then per point the
/// latency/FP bit patterns, interval boundaries and replica-group sizes.
/// Deliberately excludes processor ids, so the checksum is identical across
/// relabeled presentations of the same instance; warm-vs-cold bit-identity
/// of the full mapping (ids included) is pinned by equality tests instead.
[[nodiscard]] std::uint64_t front_checksum(std::span<const algorithms::ParetoSolution> front);

}  // namespace relap::service
