#pragma once

/// \file journal.hpp
/// Write-ahead journal for the solved-front memo cache: an append-only log
/// of cache insertions between snapshots, so a crash loses at most the last
/// `fsync_every - 1` committed solves instead of everything since the last
/// snapshot. Snapshot saves become *compaction*: save, fsync, then
/// atomically rotate the journal back to an empty header (`rotate()`).
///
/// Format (all integers little-endian via util/bytes):
///
///     magic    8 bytes  "relapjnl"
///     u32      format version (kJournalFormatVersion)
///     u64      build stamp hash — FNV-1a of snapshot_build_stamp()
///     then zero or more records:
///       u64    payload size in bytes
///       u64    payload FNV-1a checksum
///       ...    payload: one cache entry record, exactly the snapshot entry
///              codec (service/snapshot.hpp `encode_cache_entry`): u64 key
///              hash, length-prefixed key bytes, solved front
///
/// Replay rules — a journal is runtime input and a crash can truncate it at
/// *any byte*, so the decoder distinguishes torn tails from corruption:
///   * a record whose frame or payload runs past end-of-file, or whose
///     checksum fails **and** which is the final record, is a *torn tail*:
///     silently discarded (counted, never an error) — that is what a crash
///     mid-append leaves behind;
///   * a checksum failure with more bytes after it, or a checksum-valid
///     payload that does not decode (key/hash mismatch, invalid mapping
///     structure, trailing payload bytes), rejects with "journal-corrupt":
///     the write completed, so the damage is not a crash artifact;
///   * a file shorter than the header is a torn creation: replayed as empty
///     (the header is rewritten on open);
///   * wrong magic, format version, or build stamp rejects with
///     "journal-version" (same contract as snapshots: an incompatible
///     solver build must not serve replayed fronts).
///
/// `Journal::open` replays the file, truncates the torn tail off, and
/// leaves the fd positioned for appends, so a recovered journal is again a
/// clean record stream. Group commit: `append` fsyncs after every
/// `fsync_every` records (1 = every append, 0 = never — the OS decides).
/// After a failed append or fsync the journal *wedges* (mirroring a crashed
/// or failing disk): the torn bytes stay for replay to handle, further
/// appends report "io" without writing, and serving continues undurable —
/// callers surface the condition through `stats().append_errors`.
///
/// The class is externally synchronized: the broker serializes appends,
/// compaction and stat reads under one mutex (see broker.cpp). Nothing here
/// locks.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "relap/service/cache.hpp"
#include "relap/util/expected.hpp"

namespace relap::service {

inline constexpr std::uint32_t kJournalFormatVersion = 1;
/// Magic + u32 version + u64 build-stamp hash.
inline constexpr std::size_t kJournalHeaderBytes = 8 + 4 + 8;
/// Per-record frame: u64 payload size + u64 payload checksum.
inline constexpr std::size_t kJournalRecordFrameBytes = 16;

struct JournalOptions {
  /// Group-commit interval: fsync after every N appended records. 1 fsyncs
  /// every append (maximum durability), N > 1 bounds crash loss to the
  /// N - 1 most recent records, 0 never fsyncs explicitly.
  std::uint64_t fsync_every = 1;
};

/// Monotonic counters over the journal's lifetime in this process
/// (replayed records are not re-counted; rotation resets the byte fields
/// but no counter).
struct JournalStats {
  std::uint64_t records_appended = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t rotations = 0;
  std::uint64_t append_errors = 0;  ///< failed appends/fsyncs (journal wedges)
  std::uint64_t file_bytes = 0;     ///< current journal size, header included
  std::uint64_t synced_bytes = 0;   ///< prefix guaranteed durable by a completed fsync
};

/// Result of decoding a journal byte stream.
struct JournalImage {
  std::vector<FrontCache::ExportedEntry> entries;  ///< intact records, append order
  std::uint64_t torn_records = 0;  ///< discarded torn tail (0 or 1 records)
  std::uint64_t valid_bytes = 0;   ///< header + intact records; the torn tail starts here
};

/// A fresh journal header for the running build.
[[nodiscard]] std::string encode_journal_header();

/// Frames one cache entry as a journal record (size, checksum, payload).
[[nodiscard]] std::string encode_journal_record(const FrontCache::ExportedEntry& entry);

/// Pure decode of a journal byte stream per the replay rules above.
[[nodiscard]] util::Expected<JournalImage> decode_journal(std::string_view bytes);

class Journal {
 public:
  struct Opened {
    std::unique_ptr<Journal> journal;
    JournalImage replayed;
  };

  /// Opens (creating if missing) the journal at `path`: validates and
  /// replays existing bytes, truncates any torn tail, and readies the file
  /// for appends. Errors: "io" on filesystem failure, "journal-version" /
  /// "journal-corrupt" per the replay rules.
  [[nodiscard]] static util::Expected<Opened> open(std::string path,
                                                   JournalOptions options = {});

  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one record, group-committing per `fsync_every`. On failure the
  /// journal wedges (see file comment) and every later append reports "io".
  /// Returns the post-append stats.
  [[nodiscard]] util::Expected<JournalStats> append(const FrontCache::ExportedEntry& entry);

  /// Forces the group commit early (e.g. on clean shutdown): fsyncs any
  /// unsynced suffix.
  [[nodiscard]] util::Expected<JournalStats> sync();

  /// Compaction step: atomically replaces the journal with a fresh empty
  /// one (temp header, fsync, rename, directory fsync), to be called right
  /// after the snapshot that absorbed its records committed. On failure the
  /// old journal stays intact and appendable — replaying it over the new
  /// snapshot is idempotent, so a failed rotation is safe, just uncompacted.
  [[nodiscard]] util::Expected<JournalStats> rotate();

  [[nodiscard]] const JournalStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool wedged() const { return wedged_; }

 private:
  Journal(std::string path, JournalOptions options, int fd, std::uint64_t file_bytes);
  [[nodiscard]] util::Expected<JournalStats> commit();

  std::string path_;
  JournalOptions options_;
  int fd_ = -1;
  std::uint64_t unsynced_records_ = 0;
  bool wedged_ = false;
  JournalStats stats_;
};

}  // namespace relap::service
