#pragma once

/// \file server.hpp
/// The line-protocol serving front: a newline-delimited request/response
/// text protocol over the broker, so shell scripts and non-C++ tenants can
/// submit instances, solve with knobs, read metrics and manage snapshots
/// without linking the library. `examples/relap_serve.cpp` is the binary.
///
/// Protocol (one command per line; '#' starts a comment line, blank lines
/// are ignored; every response line is either `ok ...`, `err <seq> <code>
/// <message>`, or a continuation line of a multi-line response). `<seq>` is
/// the 1-based ordinal of the offending input line within its session
/// (blank and comment lines don't count), so a client pipelining many lines
/// over one connection can correlate each failure with the line that caused
/// it; server-level errors emitted outside any session line (overload
/// refusals, idle timeouts, drain notices) carry seq 0:
///
///     instance <name>           begin an instance block; inside it:
///       input <delta0>            external input data size
///       stage <pos> <work> <out>  one stage record (semantic position)
///       proc <speed> <fp> <in> <out> [b0 .. bM-1]
///                                 one processor record; trailing values are
///                                 its link-bandwidth row (diagonal ignored)
///       links <b>                 uniform link bandwidth for every proc
///                                 without an explicit row
///     end                       -> ok instance <name> stages=N processors=M
///     solve <name> [obj=pareto|minfp|minlat] [threshold=X] [method=auto|
///           exact|heuristic|exhaustive] [budget=N] [sweep=K]
///                               -> ok solve name=... cache=hit|miss
///                                  exact=0|1 algorithm=... points=K
///                                  front=0x... canonical=0x... solve_ms=...
///                                  trace <spans json>
///                                  point <i> latency=... fp=... mapping=...
///                                  done
///     stats                     -> ok stats <metrics json>
///     snapshot save <path>      -> ok snapshot save entries=N bytes=N
///     snapshot load <path>      -> ok snapshot load entries=N bytes=N
///     drop <name>               -> ok drop <name>
///     ping                      -> ok pong
///     quit                      -> ok bye        (ends this session)
///     shutdown                  -> ok shutdown   (ends the whole server)
///
/// Hardening: wire input is parsed into raw `InstanceData` records and fed
/// through the broker's structured-`Expected` admission path — the library
/// types that treat malformed values as programming errors are never
/// constructed from unvalidated bytes, so no wire input can trip an assert.
/// Numeric fields use the strict whole-token parsers from util/strings;
/// anything unparseable answers `err protocol ...` and leaves the session
/// usable. Error messages are flattened to one line so a response can never
/// be mistaken for multiple protocol lines.
///
/// Transports: `serve_stream` runs a session over any istream/ostream pair
/// (relap_serve wires stdin/stdout); `TcpServer` accepts loopback-only TCP
/// connections and serves up to `max_connections` of them concurrently, one
/// thread and one fresh `Session` per connection. Responses within a
/// connection stay strictly ordered; across connections the broker's shared
/// batch queue (`Broker::solve_batched`) is what coalesces, dedupes and
/// priority-orders the actual solving — so concurrent serving returns
/// bit-identical fronts to sequential serving.
///
/// Overload behavior on the TCP front (every limit answers with a
/// structured `err` line, never a hang):
///   - connections past `max_connections`: `err overloaded ...`, closed.
///   - a connection idle past `read_timeout_ms`: `err timeout ...`, reaped.
///   - a peer not draining its responses past `write_timeout_ms`: closed.
///   - lines arriving after a stop request: `err shutting-down ...`.
/// A `shutdown` command (or `request_stop()`, e.g. from a SIGTERM handler)
/// stops the accept loop, lets in-flight lines finish, and — for the
/// session-issued `shutdown` — puts the broker into its graceful drain.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>

#include "relap/service/broker.hpp"

namespace relap::service {

struct SessionOptions {
  /// Wire-level caps, enforced before any record is buffered, so a
  /// malicious peer cannot balloon memory regardless of broker caps.
  std::size_t max_stage_records = 4096;
  std::size_t max_processor_records = 4096;
  std::size_t max_instances = 1024;
  /// Route `solve` through the broker's shared submit/drain batch queue
  /// (`Broker::solve_batched`) instead of a direct `solve`: concurrent
  /// sessions then coalesce into one deduped, priority-ordered batch. The
  /// concurrent TCP front turns this on by default.
  bool batch_solves = false;
};

/// One protocol session: feeds lines in, accumulates response lines.
/// Stateful: named instances registered by `instance ... end` blocks live
/// for the session, and an in-progress block spans multiple lines.
class Session {
 public:
  using Options = SessionOptions;

  explicit Session(Broker& broker, Options options = {});

  /// Handles one input line, appending zero or more '\n'-terminated
  /// response lines to `out`. Returns false when the session is over
  /// (`quit`/`shutdown`); the session must not be fed further lines.
  [[nodiscard]] bool handle_line(std::string_view line, std::string& out);

  /// True once a `shutdown` command was handled: the transport should stop
  /// accepting new sessions, not just close this one.
  [[nodiscard]] bool shutdown_requested() const { return shutdown_; }

 private:
  void handle_command(std::string_view line, std::string& out);
  void handle_block_line(std::string_view line, std::string& out);
  void handle_solve(std::string_view args, std::string& out);
  void handle_snapshot(std::string_view args, std::string& out);
  /// `err <seq> <code> <message>` with this session's current line ordinal.
  void emit_err(std::string& out, std::string_view code, std::string_view message) const;
  void emit_err(std::string& out, const util::Error& error) const;

  Broker& broker_;
  Options options_;
  std::unordered_map<std::string, InstanceData> instances_;
  std::uint64_t seq_ = 0;  ///< protocol lines handled (the `err <seq>` ordinal)

  // In-progress `instance` block.
  bool in_block_ = false;
  std::string block_name_;
  InstanceData block_instance_;
  bool block_has_uniform_links_ = false;
  double block_uniform_links_ = 0.0;

  bool closed_ = false;    ///< session over (`quit` or `shutdown`)
  bool shutdown_ = false;  ///< whole-server stop requested
};

/// Serves one session over a stream pair, reading lines from `in` until it
/// is exhausted or the session ends; responses are written (and flushed)
/// after every line. Returns true iff the session requested shutdown.
bool serve_stream(Broker& broker, std::istream& in, std::ostream& out,
                  Session::Options options = {});

/// Knobs of the concurrent TCP front.
struct ServerOptions {
  ServerOptions() { session.batch_solves = true; }

  SessionOptions session;
  /// Concurrent connection cap; connections past it are refused with
  /// `err overloaded` and closed.
  std::size_t max_connections = 8;
  /// Reap a connection idle for this long (0 = never). The reaped peer gets
  /// one final `err timeout` line.
  int read_timeout_ms = 0;
  /// Give up on a peer that does not drain its responses for this long
  /// (0 = wait forever).
  int write_timeout_ms = 0;
};

/// A loopback-only TCP front serving up to `max_connections` concurrent
/// sessions, until some session issues `shutdown` or `request_stop()` is
/// called.
class TcpServer {
 public:
  TcpServer() = default;
  TcpServer(TcpServer&& other) noexcept;
  TcpServer& operator=(TcpServer&& other) noexcept;
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;
  ~TcpServer();

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, readable via
  /// `port()` afterwards). Error code "io" on socket failures.
  [[nodiscard]] static util::Expected<TcpServer> bind_localhost(std::uint16_t port);

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool bound() const { return fd_ >= 0; }

  /// Accept loop: serves sessions concurrently until one requests shutdown,
  /// `request_stop()` is called, or the socket errors out. Returns the
  /// number of connections accepted and served (refused-overloaded ones not
  /// counted). All connection threads are joined before returning.
  std::size_t serve(Broker& broker, const ServerOptions& options);

  /// Compatibility overload: per-session options only, direct (non-batched)
  /// solves, default concurrency knobs.
  std::size_t serve(Broker& broker, Session::Options options = {});

  /// Asks a running `serve` to wind down: stop accepting, answer further
  /// lines on live connections with `err shutting-down`, and return once
  /// in-flight lines finish. Safe to call from a signal-triggered thread.
  void request_stop();

 private:
  void serve_connection(Broker& broker, int conn, const ServerOptions& options);
  [[nodiscard]] bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
};

}  // namespace relap::service
