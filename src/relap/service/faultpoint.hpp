#pragma once

/// \file faultpoint.hpp
/// Deterministic fault injection for the serving stack.
///
/// A *fault point* is a named hook compiled into a failure-prone code path
/// (snapshot writes, socket sends, solver dispatch, the broker's clock).
/// Production behavior is a single relaxed atomic load: with nothing armed,
/// every hook is a no-op. Tests arm a point by name and the next N hits of
/// that hook report "fail" (or return an injected value), so every hardened
/// failure path has a test that actually executes it — torn snapshot
/// writes, short socket sends, stalled solves and skewed clocks become
/// reproducible unit tests instead of "cannot happen here" comments.
///
/// Arming is global and test-only by design (the registry is process-wide
/// state guarded by a mutex); `clear()` disarms everything between tests.
/// Hit counters keep counting whether or not a point is armed, so tests can
/// also assert that a hook was actually reached.
///
/// Catalogue of points wired in this repo (grep for `faultpoint::` to
/// enumerate): snapshot.open, snapshot.write, snapshot.fsync,
/// snapshot.rename, server.short_write, broker.solve_stall (value =
/// stall seconds), broker.clock_skew (value = seconds added to the broker's
/// steady clock), journal.append (value = bytes of the record written
/// before the simulated crash — the torn-tail generator of the
/// crash-recovery harness), journal.fsync, journal.rotate.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace relap::service::faultpoint {

struct ArmOptions {
  /// Hits of the point that pass through unharmed before it starts firing.
  std::uint64_t skip = 0;
  /// Number of hits that fire once armed; UINT64_MAX = every hit (sticky).
  std::uint64_t times = 1;
  /// Payload returned by `fire_value` (stall seconds, clock skew...).
  double value = 0.0;
};

/// Arms `name`: after `options.skip` hits, the next `options.times` hits of
/// `should_fail`/`fire_value` fire. Re-arming replaces the previous spec.
void arm(std::string_view name, ArmOptions options = {});

/// Disarms every point and zeroes all hit counters.
void clear();

/// True iff this hit of `name` fires. Counts a hit either way. With nothing
/// armed anywhere this is one relaxed atomic load and no lock.
[[nodiscard]] bool should_fail(std::string_view name);

/// Like `should_fail`, but a firing hit also yields the armed value.
[[nodiscard]] std::optional<double> fire_value(std::string_view name);

/// Total hits of `name` since the last `clear()` (armed or not). Zero for
/// names never hit; hit accounting only happens while some point is armed,
/// so production runs pay nothing for it.
[[nodiscard]] std::uint64_t hits(std::string_view name);

}  // namespace relap::service::faultpoint
