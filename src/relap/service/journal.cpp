#include "relap/service/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "relap/service/faultpoint.hpp"
#include "relap/service/snapshot.hpp"
#include "relap/util/bytes.hpp"
#include "relap/util/fs.hpp"
#include "relap/util/hash.hpp"

namespace relap::service {

namespace {

constexpr std::string_view kMagic = "relapjnl";

util::Error io_error(std::string message) { return util::make_error("io", std::move(message)); }

util::Error corrupt(std::string message) {
  return util::make_error("journal-corrupt", std::move(message));
}

util::Error version_mismatch(std::string message) {
  return util::make_error("journal-version", std::move(message));
}

}  // namespace

std::string encode_journal_header() {
  std::string out;
  out.reserve(kJournalHeaderBytes);
  out.append(kMagic);
  util::bytes::append_u32_le(out, kJournalFormatVersion);
  util::bytes::append_u64_le(out, snapshot_build_stamp_hash());
  return out;
}

std::string encode_journal_record(const FrontCache::ExportedEntry& entry) {
  std::string payload;
  encode_cache_entry(payload, entry);
  std::string out;
  out.reserve(kJournalRecordFrameBytes + payload.size());
  util::bytes::append_u64_le(out, payload.size());
  util::bytes::append_u64_le(out, util::fnv1a(payload));
  out.append(payload);
  return out;
}

util::Expected<JournalImage> decode_journal(std::string_view bytes) {
  JournalImage image;
  if (bytes.empty()) return image;  // fresh file: open() writes the header
  if (bytes.size() >= kMagic.size() && bytes.substr(0, kMagic.size()) != kMagic) {
    return version_mismatch("not a relap journal (bad magic)");
  }
  if (bytes.size() < kJournalHeaderBytes) {
    // A crash during creation tore the header itself; nothing is lost
    // because a record can only follow a complete header.
    return image;
  }
  util::bytes::ByteReader reader(bytes);
  std::string_view magic;
  std::uint32_t version = 0;
  std::uint64_t stamp = 0;
  (void)reader.read_raw(kMagic.size(), magic);
  (void)reader.read_u32_le(version);
  (void)reader.read_u64_le(stamp);
  if (version != kJournalFormatVersion) {
    return version_mismatch("journal format v" + std::to_string(version) +
                            ", this build reads v" + std::to_string(kJournalFormatVersion));
  }
  if (stamp != snapshot_build_stamp_hash()) {
    return version_mismatch(
        "journal was produced by an incompatible solver build (stamp mismatch); re-solve "
        "instead of replaying");
  }
  image.valid_bytes = kJournalHeaderBytes;

  while (reader.remaining() > 0) {
    // Frame or payload running past end-of-file is the canonical crash
    // artifact: a torn tail, discarded without error.
    std::uint64_t size = 0;
    std::uint64_t checksum = 0;
    if (reader.remaining() < kJournalRecordFrameBytes) {
      image.torn_records = 1;
      break;
    }
    (void)reader.read_u64_le(size);
    (void)reader.read_u64_le(checksum);
    if (size > reader.remaining()) {
      image.torn_records = 1;
      break;
    }
    std::string_view payload;
    (void)reader.read_raw(static_cast<std::size_t>(size), payload);
    if (util::fnv1a(payload) != checksum) {
      if (reader.done()) {
        // Final record, checksum failed: the append itself was torn.
        image.torn_records = 1;
        break;
      }
      // Bytes follow, so this record's write completed — the file is
      // damaged, not merely torn.
      return corrupt("record " + std::to_string(image.entries.size()) + " checksum mismatch");
    }
    // Checksum-valid payloads must decode completely: a structural failure
    // here is corruption even at the tail (the write finished).
    util::bytes::ByteReader payload_reader(payload);
    util::Expected<FrontCache::ExportedEntry> entry =
        decode_cache_entry(payload_reader, image.entries.size(), "journal-corrupt");
    if (!entry.has_value()) return entry.error();
    if (!payload_reader.done()) {
      return corrupt("record " + std::to_string(image.entries.size()) +
                     " has trailing payload bytes");
    }
    image.entries.push_back(std::move(entry).take());
    image.valid_bytes = reader.cursor();
  }
  return image;
}

Journal::Journal(std::string path, JournalOptions options, int fd, std::uint64_t file_bytes)
    : path_(std::move(path)), options_(options), fd_(fd) {
  stats_.file_bytes = file_bytes;
  stats_.synced_bytes = file_bytes;
}

Journal::~Journal() {
  if (fd_ >= 0) {
    // Clean shutdown leaves the tail durable on a best-effort basis; the
    // group-commit loss bound only applies to crashes.
    if (!wedged_) (void)::fsync(fd_);
    ::close(fd_);
  }
}

util::Expected<Journal::Opened> Journal::open(std::string path, JournalOptions options) {
  std::string bytes;
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0) {
    std::ifstream file(path, std::ios::binary);
    if (!file) return io_error("cannot open '" + path + "' for reading");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    if (!file) return io_error("read from '" + path + "' failed");
    bytes = std::move(buffer).str();
  }

  util::Expected<JournalImage> image = decode_journal(bytes);
  if (!image.has_value()) return image.error();

  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return io_error("cannot open '" + path + "' for appending");
  std::uint64_t file_bytes = image->valid_bytes;
  bool ok = true;
  if (image->valid_bytes < bytes.size()) {
    // Drop the torn tail so appends resume a clean record stream.
    ok = ::ftruncate(fd, static_cast<off_t>(image->valid_bytes)) == 0;
  }
  if (ok && image->valid_bytes == 0) {
    ok = util::fs::write_all(fd, encode_journal_header());
    file_bytes = kJournalHeaderBytes;
  }
  // Make the (possibly new or truncated) journal file itself durable before
  // anyone relies on appends to it.
  if (ok) ok = ::fsync(fd) == 0 && util::fs::fsync_parent_directory(path);
  if (!ok) {
    ::close(fd);
    return io_error("cannot initialize journal '" + path + "'");
  }

  Opened opened;
  opened.journal.reset(new Journal(std::move(path), options, fd, file_bytes));
  opened.replayed = std::move(image).take();
  return opened;
}

util::Expected<JournalStats> Journal::commit() {
  if (faultpoint::should_fail("journal.fsync") || ::fsync(fd_) != 0) {
    // Durability of the unsynced suffix is now unknown; wedge rather than
    // keep acknowledging appends a crash could silently lose.
    wedged_ = true;
    ++stats_.append_errors;
    return io_error("fsync of journal '" + path_ + "' failed; journal is wedged");
  }
  ++stats_.fsyncs;
  stats_.synced_bytes = stats_.file_bytes;
  unsynced_records_ = 0;
  return stats_;
}

util::Expected<JournalStats> Journal::append(const FrontCache::ExportedEntry& entry) {
  if (wedged_) {
    ++stats_.append_errors;
    return io_error("journal '" + path_ + "' is wedged after an earlier failure");
  }
  const std::string record = encode_journal_record(entry);
  // Fault point: a crash mid-append. The armed value is the number of bytes
  // of the record that make it to the file before the "crash" — the torn
  // tail replay must then discard.
  if (const std::optional<double> torn = faultpoint::fire_value("journal.append")) {
    const std::size_t torn_bytes =
        std::min(record.size(), static_cast<std::size_t>(std::max(0.0, *torn)));
    (void)util::fs::write_all(fd_, std::string_view(record).substr(0, torn_bytes));
    stats_.file_bytes += torn_bytes;
    wedged_ = true;
    ++stats_.append_errors;
    return io_error("injected torn append to journal '" + path_ + "'");
  }
  if (!util::fs::write_all(fd_, record)) {
    // The record may be partially on disk; that is exactly a torn tail, so
    // leave it for replay and wedge.
    wedged_ = true;
    ++stats_.append_errors;
    return io_error("append to journal '" + path_ + "' failed; journal is wedged");
  }
  stats_.file_bytes += record.size();
  ++stats_.records_appended;
  ++unsynced_records_;
  if (options_.fsync_every != 0 && unsynced_records_ >= options_.fsync_every) {
    return commit();
  }
  return stats_;
}

util::Expected<JournalStats> Journal::sync() {
  if (wedged_) {
    return io_error("journal '" + path_ + "' is wedged after an earlier failure");
  }
  if (stats_.synced_bytes == stats_.file_bytes) return stats_;
  return commit();
}

util::Expected<JournalStats> Journal::rotate() {
  if (wedged_) {
    return io_error("journal '" + path_ + "' is wedged after an earlier failure");
  }
  // Same temp-then-rename commit protocol as snapshot saves; a failure at
  // any step leaves the old journal (and this object's fd) untouched.
  const std::string temp = path_ + ".tmp";
  const int fd = faultpoint::should_fail("journal.rotate")
                     ? -1
                     : ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (fd < 0) return io_error("cannot open '" + temp + "' for the journal rotation");
  if (!util::fs::write_all(fd, encode_journal_header()) || ::fsync(fd) != 0) {
    ::close(fd);
    std::remove(temp.c_str());
    return io_error("write to '" + temp + "' failed during the journal rotation");
  }
  if (std::rename(temp.c_str(), path_.c_str()) != 0) {
    ::close(fd);
    std::remove(temp.c_str());
    return io_error("cannot rename '" + temp + "' to '" + path_ + "'");
  }
  if (!util::fs::fsync_parent_directory(path_)) {
    // The fresh journal is committed by name but the rename may not be
    // durable; report it, but the swap below is still correct either way
    // (both files start with a bare header).
    ::close(fd_);
    fd_ = fd;
    stats_.file_bytes = kJournalHeaderBytes;
    stats_.synced_bytes = kJournalHeaderBytes;
    unsynced_records_ = 0;
    ++stats_.rotations;
    return io_error("fsync of directory '" + util::fs::parent_directory(path_) +
                    "' failed after the journal rotation");
  }
  ::close(fd_);
  fd_ = fd;  // the fd follows the file through the rename
  stats_.file_bytes = kJournalHeaderBytes;
  stats_.synced_bytes = kJournalHeaderBytes;
  unsynced_records_ = 0;
  ++stats_.rotations;
  return stats_;
}

}  // namespace relap::service
