#include "relap/service/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "relap/service/faultpoint.hpp"
#include "relap/util/bytes.hpp"
#include "relap/util/fs.hpp"
#include "relap/util/hash.hpp"

namespace relap::service {

namespace {

using util::bytes::ByteReader;

constexpr std::string_view kMagic = "relapsnp";
constexpr std::uint32_t kSectionMeta = 1;
constexpr std::uint32_t kSectionEntries = 2;

util::Error corrupt(std::string message) {
  return util::make_error("snapshot-corrupt", std::move(message));
}

util::Error version_mismatch(std::string message) {
  return util::make_error("snapshot-version", std::move(message));
}

void encode_front(std::string& out, const algorithms::FrontReport& report) {
  util::bytes::append_u64_le(out, report.front.size());
  for (const algorithms::ParetoSolution& point : report.front) {
    util::bytes::append_double_le(out, point.latency);
    util::bytes::append_double_le(out, point.failure_probability);
    util::bytes::append_u64_le(out, point.mapping.interval_count());
    for (const mapping::IntervalAssignment& assignment : point.mapping.intervals()) {
      util::bytes::append_u64_le(out, assignment.stages.first);
      util::bytes::append_u64_le(out, assignment.stages.last);
      util::bytes::append_u64_le(out, assignment.processors.size());
      for (const platform::ProcessorId id : assignment.processors) {
        util::bytes::append_u64_le(out, id);
      }
    }
  }
  util::bytes::append_bytes(out, report.algorithm);
  out.push_back(report.exact ? '\1' : '\0');
  util::bytes::append_u64_le(out, report.evaluations);
}

/// Reads a count that prefixes records of at least `min_record_bytes` each;
/// rejects counts the remaining payload cannot possibly hold, so corrupt
/// length fields fail cleanly instead of driving giant allocations.
bool read_count(ByteReader& reader, std::size_t min_record_bytes, std::uint64_t& out) {
  if (!reader.read_u64_le(out)) return false;
  return out <= reader.remaining() / min_record_bytes;
}

util::Expected<algorithms::FrontReport> decode_front(ByteReader& reader, std::size_t entry_index,
                                                     std::string_view error_code) {
  const std::string at = " (entry " + std::to_string(entry_index) + ")";
  const auto corrupt = [&](std::string message) {
    return util::make_error(std::string(error_code), std::move(message));
  };
  algorithms::FrontReport report;

  std::uint64_t point_count = 0;
  if (!read_count(reader, 24, point_count)) return corrupt("bad front point count" + at);
  report.front.reserve(static_cast<std::size_t>(point_count));
  for (std::uint64_t p = 0; p < point_count; ++p) {
    double latency = 0.0;
    double failure_probability = 0.0;
    std::uint64_t interval_count = 0;
    if (!reader.read_double_le(latency) || !reader.read_double_le(failure_probability) ||
        !read_count(reader, 24, interval_count)) {
      return corrupt("truncated front point" + at);
    }
    if (interval_count == 0) return corrupt("front point with zero intervals" + at);

    // Re-validate every structural invariant IntervalMapping's constructor
    // asserts; a snapshot is runtime input and must never be able to abort.
    std::vector<mapping::IntervalAssignment> intervals;
    intervals.reserve(static_cast<std::size_t>(interval_count));
    std::unordered_set<platform::ProcessorId> seen;
    std::uint64_t next_stage = 0;
    for (std::uint64_t j = 0; j < interval_count; ++j) {
      std::uint64_t first = 0;
      std::uint64_t last = 0;
      std::uint64_t group_size = 0;
      if (!reader.read_u64_le(first) || !reader.read_u64_le(last) ||
          !read_count(reader, 8, group_size)) {
        return corrupt("truncated interval" + at);
      }
      if (first != next_stage || last < first) {
        return corrupt("non-consecutive interval structure" + at);
      }
      next_stage = last + 1;
      if (group_size == 0) return corrupt("empty replica group" + at);
      std::vector<platform::ProcessorId> group;
      group.reserve(static_cast<std::size_t>(group_size));
      for (std::uint64_t k = 0; k < group_size; ++k) {
        std::uint64_t id = 0;
        if (!reader.read_u64_le(id)) return corrupt("truncated replica group" + at);
        if (!group.empty() && id <= group.back()) {
          return corrupt("replica group not strictly ascending" + at);
        }
        if (!seen.insert(static_cast<platform::ProcessorId>(id)).second) {
          return corrupt("replica groups not disjoint" + at);
        }
        group.push_back(static_cast<platform::ProcessorId>(id));
      }
      intervals.push_back(mapping::IntervalAssignment{
          {static_cast<std::size_t>(first), static_cast<std::size_t>(last)}, std::move(group)});
    }
    report.front.push_back(algorithms::ParetoSolution{
        latency, failure_probability, mapping::IntervalMapping(std::move(intervals))});
  }

  std::string_view algorithm;
  if (!reader.read_bytes(algorithm)) return corrupt("truncated algorithm name" + at);
  report.algorithm = std::string(algorithm);
  std::string_view exact_byte;
  if (!reader.read_raw(1, exact_byte)) return corrupt("truncated exact flag" + at);
  if (exact_byte[0] != '\0' && exact_byte[0] != '\1') return corrupt("bad exact flag" + at);
  report.exact = exact_byte[0] == '\1';
  if (!reader.read_u64_le(report.evaluations)) return corrupt("truncated evaluation count" + at);
  return report;
}

}  // namespace

std::string_view snapshot_build_stamp() {
  // Names the solver result-stream generation, not the binary: two builds
  // of the same sources interchange snapshots, a build whose solvers
  // produce different streams must not.
  return "relap-solver-fronts-v1";
}

std::uint64_t snapshot_build_stamp_hash() { return util::fnv1a(snapshot_build_stamp()); }

void encode_cache_entry(std::string& out, const FrontCache::ExportedEntry& entry) {
  util::bytes::append_u64_le(out, entry.hash);
  util::bytes::append_bytes(out, entry.key);
  encode_front(out, *entry.value);
}

util::Expected<FrontCache::ExportedEntry> decode_cache_entry(util::bytes::ByteReader& reader,
                                                             std::size_t entry_index,
                                                             std::string_view error_code) {
  FrontCache::ExportedEntry entry;
  std::string_view key;
  if (!reader.read_u64_le(entry.hash) || !reader.read_bytes(key)) {
    return util::make_error(std::string(error_code),
                            "truncated entry " + std::to_string(entry_index));
  }
  if (util::fnv1a(key) != entry.hash) {
    return util::make_error(std::string(error_code),
                            "entry " + std::to_string(entry_index) + " key/hash mismatch");
  }
  entry.key = std::string(key);
  util::Expected<algorithms::FrontReport> front = decode_front(reader, entry_index, error_code);
  if (!front.has_value()) return front.error();
  entry.value = std::make_shared<const algorithms::FrontReport>(std::move(front).take());
  return entry;
}

std::string encode_snapshot(std::span<const FrontCache::ExportedEntry> entries) {
  std::string meta;
  util::bytes::append_u64_le(meta, entries.size());

  std::string payload;
  for (const FrontCache::ExportedEntry& entry : entries) {
    encode_cache_entry(payload, entry);
  }

  std::string out;
  out.reserve(kMagic.size() + 16 + 2 * 20 + meta.size() + payload.size());
  out.append(kMagic);
  util::bytes::append_u32_le(out, kSnapshotFormatVersion);
  util::bytes::append_u64_le(out, snapshot_build_stamp_hash());
  util::bytes::append_u32_le(out, 2);
  for (const auto& [id, section] :
       {std::pair<std::uint32_t, const std::string*>{kSectionMeta, &meta},
        std::pair<std::uint32_t, const std::string*>{kSectionEntries, &payload}}) {
    util::bytes::append_u32_le(out, id);
    util::bytes::append_u64_le(out, section->size());
    util::bytes::append_u64_le(out, util::fnv1a(*section));
    out.append(*section);
  }
  return out;
}

util::Expected<std::vector<FrontCache::ExportedEntry>> decode_snapshot(std::string_view bytes) {
  ByteReader reader(bytes);
  std::string_view magic;
  if (!reader.read_raw(kMagic.size(), magic)) return corrupt("file shorter than the magic");
  if (magic != kMagic) return version_mismatch("not a relap snapshot (bad magic)");
  std::uint32_t version = 0;
  if (!reader.read_u32_le(version)) return corrupt("truncated header");
  if (version != kSnapshotFormatVersion) {
    return version_mismatch("snapshot format v" + std::to_string(version) +
                            ", this build reads v" + std::to_string(kSnapshotFormatVersion));
  }
  std::uint64_t stamp = 0;
  if (!reader.read_u64_le(stamp)) return corrupt("truncated header");
  if (stamp != snapshot_build_stamp_hash()) {
    return version_mismatch(
        "snapshot was produced by an incompatible solver build (stamp mismatch); re-solve "
        "instead of loading");
  }
  std::uint32_t section_count = 0;
  if (!reader.read_u32_le(section_count)) return corrupt("truncated header");

  std::string_view meta;
  std::string_view entries_payload;
  bool have_meta = false;
  bool have_entries = false;
  for (std::uint32_t s = 0; s < section_count; ++s) {
    std::uint32_t id = 0;
    std::uint64_t size = 0;
    std::uint64_t checksum = 0;
    if (!reader.read_u32_le(id) || !reader.read_u64_le(size) || !reader.read_u64_le(checksum)) {
      return corrupt("truncated section header");
    }
    std::string_view payload;
    if (size > reader.remaining() || !reader.read_raw(static_cast<std::size_t>(size), payload)) {
      return corrupt("section " + std::to_string(id) + " truncated");
    }
    if (util::fnv1a(payload) != checksum) {
      return corrupt("section " + std::to_string(id) + " checksum mismatch");
    }
    if (id == kSectionMeta) {
      meta = payload;
      have_meta = true;
    } else if (id == kSectionEntries) {
      entries_payload = payload;
      have_entries = true;
    }
    // Unknown section ids are checksummed and skipped: room for forward-
    // compatible additions without a version bump.
  }
  if (!have_meta || !have_entries) return corrupt("missing meta or entries section");
  if (!reader.done()) return corrupt("trailing bytes after the last section");

  ByteReader meta_reader(meta);
  std::uint64_t entry_count = 0;
  if (!meta_reader.read_u64_le(entry_count) || !meta_reader.done()) {
    return corrupt("bad meta section");
  }

  std::vector<FrontCache::ExportedEntry> entries;
  entries.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(entry_count, entries_payload.size() / 8 + 1)));
  ByteReader entry_reader(entries_payload);
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    util::Expected<FrontCache::ExportedEntry> entry =
        decode_cache_entry(entry_reader, static_cast<std::size_t>(i), "snapshot-corrupt");
    if (!entry.has_value()) return entry.error();
    entries.push_back(std::move(entry).take());
  }
  if (!entry_reader.done()) return corrupt("trailing bytes after the last entry");
  return entries;
}

util::Expected<SnapshotStats> save_snapshot(const FrontCache& cache, const std::string& path) {
  const std::vector<FrontCache::ExportedEntry> entries = cache.export_entries();
  const std::string bytes = encode_snapshot(entries);

  // Crash-safe commit: write <path>.tmp, fsync its *data* to disk, rename
  // over the destination, then fsync the containing directory so the rename
  // itself is durable. Without the fsyncs a crash shortly after "success"
  // can leave a zero-length or torn file under the committed name — the
  // rename persists before the data does. Every step has a fault point
  // (service/faultpoint.hpp) so the failure paths are actually tested.
  const std::string temp = path + ".tmp";
  const int fd = faultpoint::should_fail("snapshot.open")
                     ? -1
                     : ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return util::make_error("io", "cannot open '" + temp + "' for writing");
  }
  bool ok = !faultpoint::should_fail("snapshot.write") && util::fs::write_all(fd, bytes);
  if (ok && (faultpoint::should_fail("snapshot.fsync") || ::fsync(fd) != 0)) ok = false;
  if (::close(fd) != 0) ok = false;
  if (!ok) {
    std::remove(temp.c_str());
    return util::make_error("io", "write to '" + temp + "' failed");
  }
  if (faultpoint::should_fail("snapshot.rename") ||
      std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return util::make_error("io", "cannot rename '" + temp + "' to '" + path + "'");
  }
  // Directory fsync failures are reported, not rolled back: the data file is
  // already committed by name, just not yet guaranteed durable.
  if (!util::fs::fsync_parent_directory(path)) {
    return util::make_error("io", "fsync of directory '" + util::fs::parent_directory(path) +
                                      "' failed after the rename");
  }
  return SnapshotStats{entries.size(), bytes.size()};
}

util::Expected<SnapshotStats> load_snapshot(FrontCache& cache, const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return util::make_error("io", "cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (!file) return util::make_error("io", "read from '" + path + "' failed");
  const std::string bytes = std::move(buffer).str();

  util::Expected<std::vector<FrontCache::ExportedEntry>> entries = decode_snapshot(bytes);
  if (!entries.has_value()) return entries.error();
  const std::size_t count = entries->size();
  for (FrontCache::ExportedEntry& entry : entries.value()) {
    cache.insert(entry.hash, std::move(entry.key), std::move(entry.value));
  }
  return SnapshotStats{count, bytes.size()};
}

}  // namespace relap::service
