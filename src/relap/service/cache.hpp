#pragma once

/// \file cache.hpp
/// The solved-front memo cache: a sharded, LRU-bounded map from canonical
/// request keys to solved `FrontReport`s.
///
/// Keys are (FNV-1a hash, full key bytes) pairs: lookups go hash-first and
/// resolve collisions by full byte equality, so a hash collision can never
/// return the wrong front. Entries are handed out as shared_ptr-to-const —
/// a hit never copies the front and eviction cannot invalidate a reply that
/// is still being denormalized.
///
/// Sharding: the key space is split over `shards` independently locked
/// LRU lists selected by the top hash bits, so concurrent broker batches
/// contend per shard, not globally. Each shard holds capacity/shards
/// entries; hit/miss/eviction counters aggregate across shards.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "relap/algorithms/solve.hpp"

namespace relap::service {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class FrontCache {
 public:
  struct Options {
    /// Total entry bound across all shards (LRU-evicted per shard).
    std::size_t capacity = 4096;
    /// Number of independently locked shards; rounded up to a power of two.
    std::size_t shards = 16;
  };

  FrontCache() : FrontCache(Options{}) {}
  explicit FrontCache(Options options);

  FrontCache(const FrontCache&) = delete;
  FrontCache& operator=(const FrontCache&) = delete;

  /// Looks up `key` (pre-hashed as `hash`); bumps the entry to
  /// most-recently-used and counts a hit, or counts a miss and returns null.
  [[nodiscard]] std::shared_ptr<const algorithms::FrontReport> find(std::uint64_t hash,
                                                                    std::string_view key);

  /// Inserts a solved front, evicting the shard's least-recently-used entry
  /// beyond capacity. Re-inserting an existing key refreshes recency and
  /// keeps the first value (both solves are bit-identical by contract).
  void insert(std::uint64_t hash, std::string key,
              std::shared_ptr<const algorithms::FrontReport> value);

  [[nodiscard]] CacheStats stats() const;

  /// Drops every entry (counters retained — they describe traffic, not
  /// contents).
  void clear();

  /// A copied-out cache entry, the unit the snapshot codec
  /// (service/snapshot.hpp) serializes. Copies are shallow: `value` shares
  /// ownership of the cached front.
  struct ExportedEntry {
    std::uint64_t hash = 0;
    std::string key;
    std::shared_ptr<const algorithms::FrontReport> value;
  };

  /// Every live entry, in a deterministic order for a given cache state:
  /// shards in index order, within a shard least- to most-recently-used —
  /// so `insert`ing the result back in order reproduces contents *and*
  /// per-shard recency, which is what makes snapshot round-trips exact
  /// even under later eviction pressure.
  [[nodiscard]] std::vector<ExportedEntry> export_entries() const;

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::string key;
    std::shared_ptr<const algorithms::FrontReport> value;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_multimap<std::uint64_t, std::list<Entry>::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(std::uint64_t hash) {
    return *shards_[(hash >> shard_shift_) & (shards_.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t per_shard_capacity_;
  int shard_shift_;
};

}  // namespace relap::service
