#include "relap/service/canonical.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "relap/io/instance_format.hpp"
#include "relap/util/hash.hpp"

namespace relap::service {

namespace {

util::Error malformed(std::string message) {
  return util::make_error("malformed", std::move(message));
}

bool finite_nonneg(double v) { return std::isfinite(v) && v >= 0.0; }
bool finite_pos(double v) { return std::isfinite(v) && v > 0.0; }

/// The largest power of two <= x (x > 0), or 1.0 for x == 0: the exact
/// divisor scale normalization uses. Dividing any double by the result only
/// shifts its exponent, so canonical values carry the caller's mantissas
/// untouched.
double pow2_floor(double x) {
  if (x <= 0.0) return 1.0;
  return std::ldexp(1.0, std::ilogb(x));
}

/// Label-independent processor ordering over the normalized columns.
///
/// Round 0 partitions processors into classes by the 4-column signature
/// (speed, fp, in, out). On platforms with any link heterogeneity, classes
/// are refined WL-style: each processor's class is extended with the sorted
/// multiset of (neighbor class, outgoing bandwidth, incoming bandwidth)
/// triples, until the partition stops splitting. The final order sorts by
/// class; processors still tied after refinement keep presentation order
/// (see canonical.hpp for why that is safe).
std::vector<std::size_t> canonical_processor_order(std::span<const double> speed,
                                                   std::span<const double> fp,
                                                   std::span<const double> in_bw,
                                                   std::span<const double> out_bw,
                                                   const std::vector<std::vector<double>>& links) {
  const std::size_t m = speed.size();
  std::vector<std::size_t> order(m);
  for (std::size_t u = 0; u < m; ++u) order[u] = u;

  const auto signature = [&](std::size_t u) {
    return std::tie(speed[u], fp[u], in_bw[u], out_bw[u]);
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return signature(a) < signature(b); });

  std::vector<std::size_t> cls(m, 0);
  std::size_t classes = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (i > 0 && signature(order[i]) != signature(order[i - 1])) ++classes;
    cls[order[i]] = classes;
  }
  ++classes;

  // Link refinement only matters when links are heterogeneous; a uniform
  // matrix extends every class identically.
  bool links_uniform = true;
  const double b0 = m >= 2 ? links[0][1] : 0.0;
  for (std::size_t u = 0; u < m && links_uniform; ++u) {
    for (std::size_t v = 0; v < m; ++v) {
      if (u != v && links[u][v] != b0) {
        links_uniform = false;
        break;
      }
    }
  }

  if (!links_uniform && classes < m) {
    using Neighborhood = std::vector<std::tuple<std::size_t, double, double>>;
    std::vector<Neighborhood> ext(m);
    for (std::size_t round = 0; round < m && classes < m; ++round) {
      for (std::size_t u = 0; u < m; ++u) {
        ext[u].clear();
        ext[u].reserve(m - 1);
        for (std::size_t v = 0; v < m; ++v) {
          if (v != u) ext[u].emplace_back(cls[v], links[u][v], links[v][u]);
        }
        std::sort(ext[u].begin(), ext[u].end());
      }
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (cls[a] != cls[b]) return cls[a] < cls[b];
        return ext[a] < ext[b];
      });
      std::size_t refined = 0;
      std::vector<std::size_t> next(m, 0);
      for (std::size_t i = 0; i < m; ++i) {
        if (i > 0 && (cls[order[i]] != cls[order[i - 1]] || ext[order[i]] != ext[order[i - 1]])) {
          ++refined;
        }
        next[order[i]] = refined;
      }
      ++refined;
      if (refined == classes) break;  // stable partition: no further splits
      cls = std::move(next);
      classes = refined;
    }
  }

  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return cls[a] < cls[b]; });
  return order;
}

}  // namespace

util::Expected<CanonicalInstance> canonicalize(const InstanceData& instance) {
  const std::size_t n = instance.stages.size();
  const std::size_t m = instance.processors.size();
  if (n == 0) return malformed("empty pipeline: a request needs at least one stage");
  if (m == 0) return malformed("zero-processor platform: a request needs at least one processor");

  // --- Stage validation: positions form a permutation, values sane. -------
  std::vector<std::size_t> stage_at(n, n);  // position -> record index
  for (std::size_t i = 0; i < n; ++i) {
    const LabeledStage& stage = instance.stages[i];
    if (stage.position >= n) {
      return malformed("stage position " + std::to_string(stage.position) +
                       " out of range for " + std::to_string(n) + " stages");
    }
    if (stage_at[stage.position] != n) {
      return malformed("duplicate stage position " + std::to_string(stage.position));
    }
    stage_at[stage.position] = i;
    if (!finite_nonneg(stage.work)) {
      return malformed("stage work must be finite and >= 0");
    }
    if (!finite_nonneg(stage.output_data)) {
      return malformed("stage output data must be finite and >= 0");
    }
  }
  if (!finite_nonneg(instance.input_data)) {
    return malformed("pipeline input data must be finite and >= 0");
  }

  // --- Processor validation. ----------------------------------------------
  for (std::size_t u = 0; u < m; ++u) {
    const LabeledProcessor& proc = instance.processors[u];
    if (!finite_pos(proc.speed)) return malformed("processor speeds must be finite and > 0");
    if (!(std::isfinite(proc.failure_prob) && proc.failure_prob >= 0.0 &&
          proc.failure_prob <= 1.0)) {
      return malformed("failure probabilities must lie in [0, 1]");
    }
    if (!finite_pos(proc.in_bandwidth) || !finite_pos(proc.out_bandwidth)) {
      return malformed("P_in/P_out bandwidths must be finite and > 0");
    }
    if (proc.links.size() != m) {
      return malformed("processor link row has " + std::to_string(proc.links.size()) +
                       " entries, expected " + std::to_string(m));
    }
    for (std::size_t v = 0; v < m; ++v) {
      if (v != u && !finite_pos(proc.links[v])) {
        return malformed("link bandwidths must be finite and > 0");
      }
    }
  }

  // --- Stage order + scale normalization (exact powers of two). -----------
  std::vector<double> work(n);
  std::vector<double> data(n + 1);
  data[0] = instance.input_data;
  for (std::size_t k = 0; k < n; ++k) {
    const LabeledStage& stage = instance.stages[stage_at[k]];
    work[k] = stage.work;
    data[k + 1] = stage.output_data;
  }
  const double work_scale = pow2_floor(*std::max_element(work.begin(), work.end()));
  const double data_scale = pow2_floor(*std::max_element(data.begin(), data.end()));
  for (double& w : work) w /= work_scale;
  for (double& d : data) d /= data_scale;

  std::vector<double> speed(m);
  std::vector<double> fp(m);
  std::vector<double> in_bw(m);
  std::vector<double> out_bw(m);
  std::vector<std::vector<double>> links(m, std::vector<double>(m, 1.0));
  for (std::size_t u = 0; u < m; ++u) {
    const LabeledProcessor& proc = instance.processors[u];
    speed[u] = proc.speed / work_scale;
    fp[u] = proc.failure_prob;
    in_bw[u] = proc.in_bandwidth / data_scale;
    out_bw[u] = proc.out_bandwidth / data_scale;
    for (std::size_t v = 0; v < m; ++v) {
      if (v != u) links[u][v] = proc.links[v] / data_scale;
    }
  }
  // Time scale: make the fastest work-normalized speed land in [1, 2). All
  // rates (speeds and bandwidths) divide by it; latencies multiply by it.
  const double time_scale = pow2_floor(*std::max_element(speed.begin(), speed.end()));
  for (std::size_t u = 0; u < m; ++u) {
    speed[u] /= time_scale;
    in_bw[u] /= time_scale;
    out_bw[u] /= time_scale;
    for (std::size_t v = 0; v < m; ++v) {
      if (v != u) links[u][v] /= time_scale;
    }
  }

  // --- Canonical processor order. -----------------------------------------
  const std::vector<std::size_t> order =
      canonical_processor_order(speed, fp, in_bw, out_bw, links);

  std::vector<double> c_speed(m);
  std::vector<double> c_fp(m);
  std::vector<double> c_in(m);
  std::vector<double> c_out(m);
  std::vector<std::vector<double>> c_links(m, std::vector<double>(m, 1.0));
  for (std::size_t c = 0; c < m; ++c) {
    const std::size_t u = order[c];
    c_speed[c] = speed[u];
    c_fp[c] = fp[u];
    c_in[c] = in_bw[u];
    c_out[c] = out_bw[u];
    for (std::size_t d = 0; d < m; ++d) {
      if (d != c) c_links[c][d] = links[u][order[d]];
    }
  }

  CanonicalInstance canonical{
      pipeline::Pipeline(std::move(work), std::move(data)),
      platform::Platform(std::move(c_speed), std::move(c_fp), std::move(c_links), std::move(c_in),
                         std::move(c_out)),
      time_scale,
      order,
      std::string(),
      0,
  };
  io::append_instance_key_bytes(canonical.pipeline, canonical.platform, canonical.key_bytes);
  canonical.key_hash = util::fnv1a(canonical.key_bytes);
  return canonical;
}

std::vector<algorithms::ParetoSolution> denormalize_front(
    const CanonicalInstance& canonical, std::span<const algorithms::ParetoSolution> front) {
  std::vector<algorithms::ParetoSolution> out;
  out.reserve(front.size());
  for (const algorithms::ParetoSolution& point : front) {
    std::vector<mapping::IntervalAssignment> intervals;
    intervals.reserve(point.mapping.interval_count());
    for (const mapping::IntervalAssignment& assignment : point.mapping.intervals()) {
      std::vector<platform::ProcessorId> group;
      group.reserve(assignment.processors.size());
      for (const platform::ProcessorId c : assignment.processors) {
        group.push_back(canonical.canonical_to_caller[c]);
      }
      intervals.push_back(mapping::IntervalAssignment{assignment.stages, std::move(group)});
    }
    out.push_back(algorithms::ParetoSolution{point.latency / canonical.time_scale,
                                             point.failure_probability,
                                             mapping::IntervalMapping(std::move(intervals))});
  }
  return out;
}

}  // namespace relap::service
