#include "relap/service/faultpoint.hpp"

#include <atomic>
#include <mutex>
#include <unordered_map>

namespace relap::service::faultpoint {

namespace {

struct Point {
  std::uint64_t skip = 0;
  std::uint64_t times = 0;  ///< remaining firing hits; 0 = disarmed
  bool sticky = false;
  double value = 0.0;
  std::uint64_t hits = 0;
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, Point> points;
};

Registry& registry() {
  static Registry instance;
  return instance;
}

/// Fast-path gate: number of currently armed points. Zero means every hook
/// returns immediately without touching the registry lock.
std::atomic<std::uint64_t>& armed_count() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

/// Shared slow path of should_fail/fire_value: counts the hit and decides
/// whether it fires, yielding the armed value when it does.
std::optional<double> hit_point(std::string_view name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.points.find(std::string(name));
  if (it == reg.points.end()) {
    // Track hits of unarmed-but-probed points too, so tests can assert a
    // hook was reached without arming it.
    ++reg.points[std::string(name)].hits;
    return std::nullopt;
  }
  Point& point = it->second;
  ++point.hits;
  if (point.times == 0) return std::nullopt;
  if (point.skip > 0) {
    --point.skip;
    return std::nullopt;
  }
  const double value = point.value;
  if (!point.sticky && --point.times == 0) {
    armed_count().fetch_sub(1, std::memory_order_relaxed);
  }
  return value;
}

}  // namespace

void arm(std::string_view name, ArmOptions options) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  Point& point = reg.points[std::string(name)];
  if (point.times == 0 && options.times > 0) {
    armed_count().fetch_add(1, std::memory_order_relaxed);
  }
  point.skip = options.skip;
  point.times = options.times;
  point.sticky = options.times == UINT64_MAX;
  point.value = options.value;
}

void clear() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.points.clear();
  armed_count().store(0, std::memory_order_relaxed);
}

bool should_fail(std::string_view name) {
  if (armed_count().load(std::memory_order_relaxed) == 0) return false;
  return hit_point(name).has_value();
}

std::optional<double> fire_value(std::string_view name) {
  if (armed_count().load(std::memory_order_relaxed) == 0) return std::nullopt;
  return hit_point(name);
}

std::uint64_t hits(std::string_view name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.points.find(std::string(name));
  return it == reg.points.end() ? 0 : it->second.hits;
}

}  // namespace relap::service::faultpoint
