#pragma once

/// \file snapshot.hpp
/// Persistence for the solved-front memo cache: a version-stamped binary
/// snapshot of (full cache key bytes -> solved FrontReport), so a restarted
/// broker starts warm instead of cold.
///
/// Format (all integers little-endian via util/bytes, doubles as IEEE-754
/// bit patterns — bit-exact round-trip by construction):
///
///     magic    8 bytes  "relapsnp"
///     u32      format version (kSnapshotFormatVersion)
///     u64      build stamp hash — FNV-1a of `snapshot_build_stamp()`
///     u32      section count
///     then per section:
///       u32    section id (1 = meta, 2 = entries)
///       u64    payload size in bytes
///       u64    payload FNV-1a checksum
///       ...    payload bytes
///
/// The meta payload holds the entry count; the entries payload holds one
/// record per cache entry: the full key (u64 hash + length-prefixed bytes —
/// the canonical instance bytes plus the solve-knob suffix the broker
/// appends, see broker.hpp) followed by the solved front (per point: the
/// latency/FP bit patterns and the interval/replica-group structure of the
/// mapping), the producing algorithm, its exactness flag and the evaluation
/// count. Keys are opaque bytes to this codec: whatever knobs the broker
/// keys on ride along unchanged.
///
/// Rejection rules — every failure is a structured `util::Expected` error,
/// never an assert, because a snapshot file is runtime input:
///   * "io": unreadable/unwritable file;
///   * "snapshot-version": wrong magic, format version, or build stamp.
///     The build stamp names the solver result-stream generation — loading
///     a snapshot produced by an incompatible solver build would serve
///     fronts that a fresh solve of the same build would not produce,
///     silently breaking the warm == cold bit-identity contract, so it is
///     rejected outright;
///   * "snapshot-corrupt": truncation anywhere, a section checksum
///     mismatch, an entry whose stored hash does not match its key bytes,
///     or a front whose mapping structure is invalid (the decoder
///     re-validates every structural invariant `mapping::IntervalMapping`
///     asserts, *before* constructing one).
///
/// Saves are crash-safe: the snapshot is written to `<path>.tmp` and
/// renamed over `path` only after a successful flush, so a crash mid-save
/// leaves the previous snapshot intact.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "relap/service/cache.hpp"
#include "relap/util/bytes.hpp"
#include "relap/util/expected.hpp"

namespace relap::service {

inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// Names the generation of solver result streams this build produces. Bump
/// whenever any cached solver's output for a given canonical instance can
/// change (algorithm changes, comparator changes, RNG scheme migrations in
/// the heuristics...). Snapshots carry its FNV-1a hash and load only into
/// builds with the same stamp.
[[nodiscard]] std::string_view snapshot_build_stamp();

/// FNV-1a of `snapshot_build_stamp()` — the value embedded in snapshots.
[[nodiscard]] std::uint64_t snapshot_build_stamp_hash();

struct SnapshotStats {
  std::size_t entries = 0;
  std::size_t bytes = 0;  ///< encoded snapshot size
};

/// Encodes one cache entry record — the unit both persistence codecs share:
/// u64 key hash, length-prefixed key bytes, then the solved front. The
/// snapshot's entries section is a run of these; the journal
/// (service/journal.hpp) frames one per record.
void encode_cache_entry(std::string& out, const FrontCache::ExportedEntry& entry);

/// Decodes one cache entry record from `reader`, re-validating everything
/// `decode_snapshot` would (key/hash match, every mapping invariant).
/// Failures carry `error_code` ("snapshot-corrupt" or "journal-corrupt" —
/// both codecs reject with their own code) and name `entry_index`.
[[nodiscard]] util::Expected<FrontCache::ExportedEntry> decode_cache_entry(
    util::bytes::ByteReader& reader, std::size_t entry_index, std::string_view error_code);

/// Serializes `entries` into the format above.
[[nodiscard]] std::string encode_snapshot(std::span<const FrontCache::ExportedEntry> entries);

/// Parses and fully validates a snapshot byte string (see rejection rules
/// above). The returned entries preserve encoding order.
[[nodiscard]] util::Expected<std::vector<FrontCache::ExportedEntry>> decode_snapshot(
    std::string_view bytes);

/// Exports `cache` and writes the snapshot to `path` (crash-safe
/// temp-then-rename). Error code "io" on filesystem failure.
[[nodiscard]] util::Expected<SnapshotStats> save_snapshot(const FrontCache& cache,
                                                          const std::string& path);

/// Reads, validates and inserts a snapshot into `cache` (existing entries
/// with equal keys keep their cached value — both are bit-identical by
/// contract). The cache is untouched on any error.
[[nodiscard]] util::Expected<SnapshotStats> load_snapshot(FrontCache& cache,
                                                          const std::string& path);

}  // namespace relap::service
