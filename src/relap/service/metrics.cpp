#include "relap/service/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace relap::service {

namespace {

std::string json_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

void append_counter(std::string& out, const char* name, const Counter& counter, bool& first) {
  if (!first) out += ',';
  first = false;
  out += '"';
  out += name;
  out += "\":";
  out += std::to_string(counter.value());
}

void append_gauge(std::string& out, const char* name, const Gauge& gauge, bool& first) {
  if (!first) out += ',';
  first = false;
  out += '"';
  out += name;
  out += "\":";
  out += json_number(gauge.value());
}

void append_histogram(std::string& out, const char* name, const LatencyHistogram& histogram,
                      bool& first) {
  if (!first) out += ',';
  first = false;
  out += '"';
  out += name;
  out += "\":";
  out += histogram.to_json();
}

}  // namespace

double LatencyHistogram::bucket_upper_bound(int i) {
  return std::ldexp(1.0, i + 1 + kMinExponent);
}

int LatencyHistogram::bucket_index(double seconds) {
  if (!(seconds > 0.0) || !std::isfinite(seconds)) return 0;
  const int e = std::ilogb(seconds) - kMinExponent;
  if (e < 0) return 0;
  if (e >= kBuckets) return kBuckets - 1;
  return e;
}

void LatencyHistogram::record(double seconds) {
  buckets_[static_cast<std::size_t>(bucket_index(seconds))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const double ns = seconds * 1e9;
  const std::uint64_t clamped =
      !(ns > 0.0) ? 0
                  : (ns >= 1.8e19 ? static_cast<std::uint64_t>(-1) / 2
                                  : static_cast<std::uint64_t>(ns));
  total_ns_.fetch_add(clamped, std::memory_order_relaxed);
}

std::string LatencyHistogram::to_json() const {
  std::string out = "{\"count\":" + std::to_string(count());
  out += ",\"total_seconds\":" + json_number(total_seconds());
  out += ",\"buckets\":[";
  bool first = true;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = bucket_count(i);
    if (c == 0) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"le\":" + json_number(bucket_upper_bound(i)) + ",\"count\":" + std::to_string(c) +
           '}';
  }
  out += "]}";
  return out;
}

std::string ServiceMetrics::to_json() const {
  std::string out = "{";
  bool first = true;
  append_counter(out, "requests_total", requests_total, first);
  append_counter(out, "rejected_total", rejected_total, first);
  append_counter(out, "batches_total", batches_total, first);
  append_counter(out, "deduped_total", deduped_total, first);
  append_counter(out, "solves_total", solves_total, first);
  append_counter(out, "solve_errors_total", solve_errors_total, first);
  append_counter(out, "deadline_exceeded_total", deadline_exceeded_total, first);
  append_counter(out, "cancelled_total", cancelled_total, first);
  append_counter(out, "shed_total", shed_total, first);
  append_counter(out, "degraded_total", degraded_total, first);
  append_counter(out, "snapshot_saves", snapshot_saves, first);
  append_counter(out, "snapshot_loads", snapshot_loads, first);
  append_counter(out, "snapshot_entries_saved", snapshot_entries_saved, first);
  append_counter(out, "snapshot_entries_loaded", snapshot_entries_loaded, first);
  append_counter(out, "journal_records_replayed", journal_records_replayed, first);
  append_counter(out, "journal_records_discarded_torn", journal_records_discarded_torn, first);
  append_gauge(out, "recovery_seconds", recovery_seconds, first);
  out += ",\"latency\":{";
  first = true;
  append_histogram(out, "queue_wait", queue_wait, first);
  append_histogram(out, "canonicalize", canonicalize, first);
  append_histogram(out, "cache_probe", cache_probe, first);
  append_histogram(out, "solve", solve, first);
  append_histogram(out, "denormalize", denormalize, first);
  append_histogram(out, "request", request, first);
  out += "}}";
  return out;
}

}  // namespace relap::service
