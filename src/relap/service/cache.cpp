#include "relap/service/cache.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace relap::service {

FrontCache::FrontCache(Options options) {
  const std::size_t shard_count = std::bit_ceil(std::max<std::size_t>(1, options.shards));
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) shards_.push_back(std::make_unique<Shard>());
  per_shard_capacity_ =
      std::max<std::size_t>(1, (std::max<std::size_t>(1, options.capacity) + shard_count - 1) /
                                   shard_count);
  // Select shards by the top hash bits: FNV-1a mixes high bits well, and the
  // low bits keep feeding the per-shard unordered index. (Clamped to 63 for
  // the single-shard case, where the mask already pins the index to 0.)
  shard_shift_ = std::min(63, 64 - std::countr_zero(shard_count));
}

std::shared_ptr<const algorithms::FrontReport> FrontCache::find(std::uint64_t hash,
                                                                std::string_view key) {
  Shard& shard = shard_for(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [first, last] = shard.index.equal_range(hash);
  for (auto it = first; it != last; ++it) {
    if (it->second->key == key) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++shard.hits;
      return it->second->value;
    }
  }
  ++shard.misses;
  return nullptr;
}

void FrontCache::insert(std::uint64_t hash, std::string key,
                        std::shared_ptr<const algorithms::FrontReport> value) {
  Shard& shard = shard_for(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [first, last] = shard.index.equal_range(hash);
  for (auto it = first; it != last; ++it) {
    if (it->second->key == key) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
  }
  shard.lru.push_front(Entry{hash, std::move(key), std::move(value)});
  shard.index.emplace(hash, shard.lru.begin());
  while (shard.lru.size() > per_shard_capacity_) {
    const Entry& victim = shard.lru.back();
    auto [vfirst, vlast] = shard.index.equal_range(victim.hash);
    for (auto it = vfirst; it != vlast; ++it) {
      if (it->second == std::prev(shard.lru.end())) {
        shard.index.erase(it);
        break;
      }
    }
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

CacheStats FrontCache::stats() const {
  CacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.entries += shard->lru.size();
  }
  return stats;
}

std::vector<FrontCache::ExportedEntry> FrontCache::export_entries() const {
  std::vector<ExportedEntry> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it) {
      out.push_back(ExportedEntry{it->hash, it->key, it->value});
    }
  }
  return out;
}

void FrontCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace relap::service
