#include "relap/service/request.hpp"

#include <cstdio>

#include "relap/util/assert.hpp"
#include "relap/util/hash.hpp"

namespace relap::service {

InstanceData InstanceData::from(const pipeline::Pipeline& pipeline,
                                const platform::Platform& platform) {
  InstanceData data;
  data.input_data = pipeline.data(0);
  const std::size_t n = pipeline.stage_count();
  data.stages.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    data.stages.push_back(LabeledStage{k, pipeline.work(k), pipeline.output_size(k)});
  }
  const std::size_t m = platform.processor_count();
  data.processors.reserve(m);
  for (std::size_t u = 0; u < m; ++u) {
    LabeledProcessor proc;
    proc.speed = platform.speed(u);
    proc.failure_prob = platform.failure_prob(u);
    proc.in_bandwidth = platform.bandwidth_in(u);
    proc.out_bandwidth = platform.bandwidth_out(u);
    proc.links.resize(m);
    for (std::size_t v = 0; v < m; ++v) {
      proc.links[v] = u == v ? 0.0 : platform.bandwidth(u, v);
    }
    data.processors.push_back(std::move(proc));
  }
  return data;
}

InstanceData InstanceData::relabeled(std::span<const std::size_t> stage_order,
                                     std::span<const std::size_t> processor_order) const {
  RELAP_ASSERT(stage_order.size() == stages.size(), "stage_order must cover every stage record");
  RELAP_ASSERT(processor_order.size() == processors.size(),
               "processor_order must cover every processor record");
  InstanceData out;
  out.input_data = input_data;
  out.stages.reserve(stages.size());
  for (const std::size_t i : stage_order) out.stages.push_back(stages[i]);
  out.processors.reserve(processors.size());
  for (const std::size_t u : processor_order) {
    LabeledProcessor proc = processors[u];
    for (std::size_t j = 0; j < processor_order.size(); ++j) {
      proc.links[j] = processors[u].links[processor_order[j]];
    }
    out.processors.push_back(std::move(proc));
  }
  return out;
}

InstanceData InstanceData::scaled(double work_factor, double data_factor,
                                  double time_factor) const {
  InstanceData out = *this;
  out.input_data *= data_factor;
  for (LabeledStage& stage : out.stages) {
    stage.work *= work_factor;
    stage.output_data *= data_factor;
  }
  const double compute_factor = work_factor * time_factor;
  const double transfer_factor = data_factor * time_factor;
  for (LabeledProcessor& proc : out.processors) {
    proc.speed *= compute_factor;
    proc.in_bandwidth *= transfer_factor;
    proc.out_bandwidth *= transfer_factor;
    for (double& b : proc.links) b *= transfer_factor;
  }
  return out;
}

std::string TraceSpans::to_json() const {
  const auto field = [](const char* name, double seconds) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "\"%s\":%.17g", name, seconds);
    return std::string(buffer);
  };
  return '{' + field("queue_wait_s", queue_wait_seconds) + ',' +
         field("canonicalize_s", canonicalize_seconds) + ',' +
         field("cache_probe_s", cache_probe_seconds) + ',' +
         field("solve_s", solve_seconds) + ',' +
         field("denormalize_s", denormalize_seconds) + '}';
}

std::string to_string(Objective objective) {
  switch (objective) {
    case Objective::MinFpForLatency: return "min-fp-for-latency";
    case Objective::MinLatencyForFp: return "min-latency-for-fp";
    case Objective::ParetoFront: return "pareto-front";
  }
  RELAP_UNREACHABLE("invalid Objective");
}

std::uint64_t front_checksum(std::span<const algorithms::ParetoSolution> front) {
  util::Fnv1a hash;
  hash.add(static_cast<std::uint64_t>(front.size()));
  for (const algorithms::ParetoSolution& point : front) {
    hash.add(point.latency);
    hash.add(point.failure_probability);
    hash.add(static_cast<std::uint64_t>(point.mapping.interval_count()));
    for (const mapping::IntervalAssignment& assignment : point.mapping.intervals()) {
      hash.add(static_cast<std::uint64_t>(assignment.stages.first));
      hash.add(static_cast<std::uint64_t>(assignment.stages.last));
      hash.add(static_cast<std::uint64_t>(assignment.processors.size()));
    }
  }
  return hash.value();
}

}  // namespace relap::service
