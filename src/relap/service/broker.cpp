#include "relap/service/broker.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "relap/util/bytes.hpp"
#include "relap/util/hash.hpp"

namespace relap::service {

namespace {

double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

Broker::Broker(BrokerOptions options) : options_(options), cache_(options.cache) {}

util::Expected<Broker::Admitted> Broker::admit(const SolveRequest& request) const {
  const auto start = std::chrono::steady_clock::now();
  if (request.instance.stages.size() > options_.max_stages) {
    return util::make_error("oversized",
                            "request has " + std::to_string(request.instance.stages.size()) +
                                " stages, broker admits at most " +
                                std::to_string(options_.max_stages));
  }
  if (request.instance.processors.size() > options_.max_processors) {
    return util::make_error("oversized",
                            "request has " + std::to_string(request.instance.processors.size()) +
                                " processors, broker admits at most " +
                                std::to_string(options_.max_processors));
  }
  if (request.max_evaluations == 0) {
    return util::make_error("malformed", "max_evaluations must be > 0");
  }
  if (request.objective == Objective::ParetoFront && request.pareto_thresholds < 2) {
    return util::make_error("malformed", "pareto_thresholds must be >= 2 for a front sweep");
  }
  if (request.objective != Objective::ParetoFront) {
    if (std::isnan(request.threshold)) {
      return util::make_error("malformed", "threshold must not be NaN");
    }
    if (request.threshold < 0.0) {
      return util::infeasible("no mapping satisfies a negative " +
                              std::string(request.objective == Objective::MinFpForLatency
                                              ? "latency"
                                              : "failure probability") +
                              " bound");
    }
  }

  util::Expected<CanonicalInstance> canonical = canonicalize(request.instance);
  if (!canonical.has_value()) return canonical.error();

  Admitted admitted{std::move(canonical).take(), std::string(), 0, 0.0, 0.0};
  // Thresholds live in caller time units; the canonical form's latency axis
  // is scaled by time_scale (an exact power of two), so the cap converts
  // exactly too. FP caps are dimensionless.
  switch (request.objective) {
    case Objective::MinFpForLatency:
      admitted.threshold_canonical = request.threshold * admitted.canonical.time_scale;
      break;
    case Objective::MinLatencyForFp:
      admitted.threshold_canonical = request.threshold;
      break;
    case Objective::ParetoFront:
      admitted.threshold_canonical = 0.0;
      break;
  }

  // Full cache key: canonical instance bytes plus every knob that can change
  // the solved front. pareto_thresholds only shapes ParetoFront sweeps, so
  // it is zeroed otherwise to keep unrelated requests on one key.
  admitted.full_key = admitted.canonical.key_bytes;
  admitted.full_key.push_back(static_cast<char>(request.objective));
  admitted.full_key.push_back(static_cast<char>(request.method));
  util::bytes::append_double_le(admitted.full_key, admitted.threshold_canonical);
  util::bytes::append_u64_le(admitted.full_key, request.max_evaluations);
  util::bytes::append_u64_le(admitted.full_key,
                             request.objective == Objective::ParetoFront
                                 ? static_cast<std::uint64_t>(request.pareto_thresholds)
                                 : 0);
  admitted.full_hash = util::fnv1a(admitted.full_key);
  admitted.canonicalize_seconds = elapsed_seconds(start);
  return admitted;
}

util::Expected<algorithms::FrontReport> Broker::solve_canonical(const SolveRequest& request,
                                                                const Admitted& admitted) const {
  algorithms::SolveOptions options;
  options.method = request.method;
  options.auto_exhaustive_budget = request.max_evaluations;
  options.pareto_thresholds = request.pareto_thresholds;
  options.exhaustive.max_evaluations = request.max_evaluations;
  options.exhaustive.pool = options_.pool;
  options.heuristic.pool = options_.pool;

  const pipeline::Pipeline& pipeline = admitted.canonical.pipeline;
  const platform::Platform& platform = admitted.canonical.platform;

  if (request.objective == Objective::ParetoFront) {
    return algorithms::solve_pareto_front(pipeline, platform, options);
  }

  util::Expected<algorithms::SolveReport> solved =
      request.objective == Objective::MinFpForLatency
          ? algorithms::solve_min_fp_for_latency(pipeline, platform,
                                                 admitted.threshold_canonical, options)
          : algorithms::solve_min_latency_for_fp(pipeline, platform,
                                                 admitted.threshold_canonical, options);
  if (!solved.has_value()) return solved.error();
  algorithms::SolveReport report = std::move(solved).take();
  algorithms::FrontReport front;
  front.front.push_back(algorithms::ParetoSolution{report.solution.latency,
                                                   report.solution.failure_probability,
                                                   std::move(report.solution.mapping)});
  front.algorithm = std::move(report.algorithm);
  front.exact = report.exact;
  return front;
}

Reply Broker::make_reply(const Admitted& admitted, const algorithms::FrontReport& report,
                         bool cache_hit, TraceSpans spans) const {
  const auto start = std::chrono::steady_clock::now();
  Reply reply;
  reply.front = denormalize_front(admitted.canonical, report.front);
  reply.algorithm = report.algorithm;
  reply.exact = report.exact;
  reply.cache_hit = cache_hit;
  reply.canonical_hash = admitted.canonical.key_hash;
  spans.denormalize_seconds = elapsed_seconds(start);
  reply.solve_seconds = spans.solve_seconds;
  reply.spans = spans;
  metrics_.denormalize.record(spans.denormalize_seconds);
  metrics_.request.record(spans.queue_wait_seconds + spans.canonicalize_seconds +
                          spans.cache_probe_seconds + spans.solve_seconds +
                          spans.denormalize_seconds);
  return reply;
}

util::Expected<Reply> Broker::solve(const SolveRequest& request) {
  std::vector<util::Expected<Reply>> replies = solve_batch(std::span(&request, 1));
  return std::move(replies.front());
}

std::vector<util::Expected<Reply>> Broker::solve_batch(std::span<const SolveRequest> requests) {
  return solve_batch_timed(requests, {});
}

std::vector<util::Expected<Reply>> Broker::solve_batch_timed(
    std::span<const SolveRequest> requests, std::span<const double> queue_waits) {
  const std::size_t count = requests.size();
  metrics_.batches_total.add(1);
  metrics_.requests_total.add(count);
  std::vector<std::optional<util::Expected<Reply>>> staged(count);
  std::vector<std::optional<Admitted>> admitted(count);
  const auto queue_wait_of = [&](std::size_t i) {
    return queue_waits.empty() ? 0.0 : queue_waits[i];
  };

  // Group requests with equal full keys (first-seen order): one solve per
  // group, everyone else rides the cache.
  struct Group {
    std::uint64_t hash = 0;
    std::vector<std::size_t> members;
    int priority = 0;
    double deadline = 0.0;
    std::size_t arrival = 0;
  };
  std::vector<Group> groups;
  std::unordered_map<std::string_view, std::size_t> group_of;
  for (std::size_t i = 0; i < count; ++i) {
    util::Expected<Admitted> result = admit(requests[i]);
    if (!result.has_value()) {
      metrics_.rejected_total.add(1);
      staged[i] = result.error();
      continue;
    }
    metrics_.canonicalize.record(result->canonicalize_seconds);
    if (!queue_waits.empty()) metrics_.queue_wait.record(queue_waits[i]);
    admitted[i] = std::move(result).take();
    const std::string_view key = admitted[i]->full_key;
    auto [it, inserted] = group_of.try_emplace(key, groups.size());
    if (inserted) {
      groups.push_back(Group{admitted[i]->full_hash, {i}, requests[i].priority,
                             requests[i].deadline, i});
    } else {
      Group& group = groups[it->second];
      group.members.push_back(i);
      group.priority = std::max(group.priority, requests[i].priority);
      group.deadline = std::min(group.deadline, requests[i].deadline);
    }
  }

  // Dispatch order: priority first, tighter deadline next, arrival last.
  // The pool claims task indices in increasing order, so this is the order
  // solves *start* in.
  std::stable_sort(groups.begin(), groups.end(), [](const Group& a, const Group& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    return a.arrival < b.arrival;
  });

  exec::ThreadPool::resolve(options_.pool).run(groups.size(), [&](std::size_t g) {
    const Group& group = groups[g];
    const std::size_t lead_index = group.members.front();
    const Admitted& lead = *admitted[lead_index];

    TraceSpans lead_spans;
    lead_spans.queue_wait_seconds = queue_wait_of(lead_index);
    lead_spans.canonicalize_seconds = lead.canonicalize_seconds;

    const auto probe_start = std::chrono::steady_clock::now();
    std::shared_ptr<const algorithms::FrontReport> report = cache_.find(group.hash, lead.full_key);
    lead_spans.cache_probe_seconds = elapsed_seconds(probe_start);
    metrics_.cache_probe.record(lead_spans.cache_probe_seconds);
    const bool lead_hit = report != nullptr;
    if (!report) {
      metrics_.solves_total.add(1);
      const auto start = std::chrono::steady_clock::now();
      util::Expected<algorithms::FrontReport> solved = solve_canonical(requests[lead_index], lead);
      lead_spans.solve_seconds = elapsed_seconds(start);
      metrics_.solve.record(lead_spans.solve_seconds);
      if (!solved.has_value()) {
        // Errors are not cached: every member gets its own copy.
        metrics_.solve_errors_total.add(1);
        for (const std::size_t member : group.members) staged[member] = solved.error();
        return;
      }
      report = std::make_shared<const algorithms::FrontReport>(std::move(solved).take());
      cache_.insert(group.hash, lead.full_key, report);
    }
    staged[lead_index] = make_reply(lead, *report, lead_hit, lead_spans);

    // Deduped members re-probe so the hit counters reflect them; the local
    // report backstops the (theoretical) eviction race within one batch.
    for (std::size_t k = 1; k < group.members.size(); ++k) {
      const std::size_t member = group.members[k];
      metrics_.deduped_total.add(1);
      TraceSpans member_spans;
      member_spans.queue_wait_seconds = queue_wait_of(member);
      member_spans.canonicalize_seconds = admitted[member]->canonicalize_seconds;
      const auto member_probe_start = std::chrono::steady_clock::now();
      std::shared_ptr<const algorithms::FrontReport> cached =
          cache_.find(group.hash, admitted[member]->full_key);
      member_spans.cache_probe_seconds = elapsed_seconds(member_probe_start);
      metrics_.cache_probe.record(member_spans.cache_probe_seconds);
      staged[member] =
          make_reply(*admitted[member], cached ? *cached : *report, true, member_spans);
    }
  });

  std::vector<util::Expected<Reply>> replies;
  replies.reserve(count);
  for (std::size_t i = 0; i < count; ++i) replies.push_back(std::move(*staged[i]));
  return replies;
}

std::uint64_t Broker::submit(SolveRequest request) {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  const std::uint64_t id = next_ticket_++;
  queue_.push_back(Ticket{id, std::move(request), std::chrono::steady_clock::now()});
  return id;
}

std::size_t Broker::pending() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

std::vector<Broker::Drained> Broker::drain() {
  std::vector<Ticket> batch;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    batch.swap(queue_);
  }
  const auto drained_at = std::chrono::steady_clock::now();
  std::vector<SolveRequest> requests;
  std::vector<double> queue_waits;
  requests.reserve(batch.size());
  queue_waits.reserve(batch.size());
  for (Ticket& ticket : batch) {
    requests.push_back(std::move(ticket.request));
    queue_waits.push_back(
        std::chrono::duration<double>(drained_at - ticket.submitted).count());
  }
  std::vector<util::Expected<Reply>> replies = solve_batch_timed(requests, queue_waits);
  std::vector<Drained> drained;
  drained.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    drained.push_back(Drained{batch[i].id, std::move(replies[i])});
  }
  return drained;
}

std::string Broker::metrics_json() const {
  const CacheStats stats = cache_.stats();
  char cache_json[256];
  std::snprintf(cache_json, sizeof cache_json,
                "{\"cache\":{\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,\"entries\":%zu,"
                "\"hit_rate\":%.17g},",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.evictions), stats.entries,
                stats.hit_rate());
  // metrics_.to_json() is a non-empty object; splice the cache section in
  // front of its first field.
  return cache_json + metrics_.to_json().substr(1);
}

util::Expected<SnapshotStats> Broker::save_snapshot(const std::string& path) const {
  util::Expected<SnapshotStats> saved = service::save_snapshot(cache_, path);
  if (saved.has_value()) {
    metrics_.snapshot_saves.add(1);
    metrics_.snapshot_entries_saved.add(saved->entries);
  }
  return saved;
}

util::Expected<SnapshotStats> Broker::load_snapshot(const std::string& path) {
  util::Expected<SnapshotStats> loaded = service::load_snapshot(cache_, path);
  if (loaded.has_value()) {
    metrics_.snapshot_loads.add(1);
    metrics_.snapshot_entries_loaded.add(loaded->entries);
  }
  return loaded;
}

}  // namespace relap::service
