#include "relap/service/broker.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>

#include "relap/service/faultpoint.hpp"
#include "relap/util/bytes.hpp"
#include "relap/util/hash.hpp"

namespace relap::service {

namespace {

double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

util::Error deadline_exceeded_error(double deadline) {
  return util::make_error("deadline-exceeded",
                          "wall-clock budget of " + std::to_string(deadline) +
                              "s was spent before a result was ready");
}

util::Error shutting_down_error() {
  return util::make_error("shutting-down", "broker is draining; no new work is accepted");
}

/// Seconds the broker's clock is ahead of the real one — always 0 unless the
/// "broker.clock_skew" fault point is armed (deterministic deadline tests).
double clock_skew_seconds() {
  return faultpoint::fire_value("broker.clock_skew").value_or(0.0);
}

/// True iff a budget of `deadline` seconds is spent after `elapsed` seconds.
/// NaN / negative deadlines are malformed (rejected at admission) and never
/// *expire* here; +inf never expires; 0 always does.
bool deadline_expired(double deadline, double elapsed) {
  return deadline >= 0.0 && elapsed >= deadline;
}

}  // namespace

Broker::Broker(BrokerOptions options) : options_(options), cache_(options.cache) {}

util::Expected<Broker::Admitted> Broker::admit(const SolveRequest& request) const {
  const auto start = std::chrono::steady_clock::now();
  if (request.instance.stages.size() > options_.max_stages) {
    return util::make_error("oversized",
                            "request has " + std::to_string(request.instance.stages.size()) +
                                " stages, broker admits at most " +
                                std::to_string(options_.max_stages));
  }
  if (request.instance.processors.size() > options_.max_processors) {
    return util::make_error("oversized",
                            "request has " + std::to_string(request.instance.processors.size()) +
                                " processors, broker admits at most " +
                                std::to_string(options_.max_processors));
  }
  if (request.max_evaluations == 0) {
    return util::make_error("malformed", "max_evaluations must be > 0");
  }
  if (std::isnan(request.deadline)) {
    return util::make_error("malformed", "deadline must not be NaN");
  }
  if (request.deadline < 0.0) {
    return util::make_error("malformed", "deadline must be a non-negative number of seconds");
  }
  if (request.objective == Objective::ParetoFront && request.pareto_thresholds < 2) {
    return util::make_error("malformed", "pareto_thresholds must be >= 2 for a front sweep");
  }
  if (request.objective != Objective::ParetoFront) {
    if (std::isnan(request.threshold)) {
      return util::make_error("malformed", "threshold must not be NaN");
    }
    if (request.threshold < 0.0) {
      return util::infeasible("no mapping satisfies a negative " +
                              std::string(request.objective == Objective::MinFpForLatency
                                              ? "latency"
                                              : "failure probability") +
                              " bound");
    }
  }

  util::Expected<CanonicalInstance> canonical = canonicalize(request.instance);
  if (!canonical.has_value()) return canonical.error();

  Admitted admitted{std::move(canonical).take(), std::string(), 0, 0.0, 0.0};
  // Thresholds live in caller time units; the canonical form's latency axis
  // is scaled by time_scale (an exact power of two), so the cap converts
  // exactly too. FP caps are dimensionless.
  switch (request.objective) {
    case Objective::MinFpForLatency:
      admitted.threshold_canonical = request.threshold * admitted.canonical.time_scale;
      break;
    case Objective::MinLatencyForFp:
      admitted.threshold_canonical = request.threshold;
      break;
    case Objective::ParetoFront:
      admitted.threshold_canonical = 0.0;
      break;
  }

  // Full cache key: canonical instance bytes plus every knob that can change
  // the solved front. pareto_thresholds only shapes ParetoFront sweeps, so
  // it is zeroed otherwise to keep unrelated requests on one key.
  admitted.full_key = admitted.canonical.key_bytes;
  admitted.full_key.push_back(static_cast<char>(request.objective));
  admitted.full_key.push_back(static_cast<char>(request.method));
  util::bytes::append_double_le(admitted.full_key, admitted.threshold_canonical);
  util::bytes::append_u64_le(admitted.full_key, request.max_evaluations);
  util::bytes::append_u64_le(admitted.full_key,
                             request.objective == Objective::ParetoFront
                                 ? static_cast<std::uint64_t>(request.pareto_thresholds)
                                 : 0);
  admitted.full_hash = util::fnv1a(admitted.full_key);
  admitted.canonicalize_seconds = elapsed_seconds(start);
  return admitted;
}

util::Expected<algorithms::FrontReport> Broker::solve_canonical(
    const SolveRequest& request, const Admitted& admitted,
    const util::CancelToken* cancel) const {
  algorithms::SolveOptions options;
  options.method = request.method;
  options.auto_exhaustive_budget = request.max_evaluations;
  options.pareto_thresholds = request.pareto_thresholds;
  options.exhaustive.max_evaluations = request.max_evaluations;
  options.exhaustive.pool = options_.pool;
  options.exhaustive.cancel = cancel;
  options.heuristic.pool = options_.pool;
  options.heuristic.cancel = cancel;

  const pipeline::Pipeline& pipeline = admitted.canonical.pipeline;
  const platform::Platform& platform = admitted.canonical.platform;

  if (request.objective == Objective::ParetoFront) {
    return algorithms::solve_pareto_front(pipeline, platform, options);
  }

  util::Expected<algorithms::SolveReport> solved =
      request.objective == Objective::MinFpForLatency
          ? algorithms::solve_min_fp_for_latency(pipeline, platform,
                                                 admitted.threshold_canonical, options)
          : algorithms::solve_min_latency_for_fp(pipeline, platform,
                                                 admitted.threshold_canonical, options);
  if (!solved.has_value()) return solved.error();
  algorithms::SolveReport report = std::move(solved).take();
  algorithms::FrontReport front;
  front.front.push_back(algorithms::ParetoSolution{report.solution.latency,
                                                   report.solution.failure_probability,
                                                   std::move(report.solution.mapping)});
  front.algorithm = std::move(report.algorithm);
  front.exact = report.exact;
  return front;
}

Reply Broker::make_reply(const Admitted& admitted, const algorithms::FrontReport& report,
                         bool cache_hit, TraceSpans spans) const {
  const auto start = std::chrono::steady_clock::now();
  Reply reply;
  reply.front = denormalize_front(admitted.canonical, report.front);
  reply.algorithm = report.algorithm;
  reply.exact = report.exact;
  reply.cache_hit = cache_hit;
  reply.canonical_hash = admitted.canonical.key_hash;
  spans.denormalize_seconds = elapsed_seconds(start);
  reply.solve_seconds = spans.solve_seconds;
  reply.spans = spans;
  metrics_.denormalize.record(spans.denormalize_seconds);
  metrics_.request.record(spans.queue_wait_seconds + spans.canonicalize_seconds +
                          spans.cache_probe_seconds + spans.solve_seconds +
                          spans.denormalize_seconds);
  return reply;
}

util::Expected<Reply> Broker::solve(const SolveRequest& request) {
  std::vector<util::Expected<Reply>> replies = solve_batch(std::span(&request, 1));
  return std::move(replies.front());
}

std::vector<util::Expected<Reply>> Broker::solve_batch(std::span<const SolveRequest> requests) {
  if (shutting_down()) {
    std::vector<util::Expected<Reply>> replies;
    replies.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) replies.push_back(shutting_down_error());
    return replies;
  }
  return solve_batch_timed(requests, {});
}

std::vector<util::Expected<Reply>> Broker::solve_batch_timed(
    std::span<const SolveRequest> requests, std::span<const double> queue_waits) {
  const std::size_t count = requests.size();
  metrics_.batches_total.add(1);
  metrics_.requests_total.add(count);
  std::vector<std::optional<util::Expected<Reply>>> staged(count);
  std::vector<std::optional<Admitted>> admitted(count);
  const auto queue_wait_of = [&](std::size_t i) {
    return queue_waits.empty() ? 0.0 : queue_waits[i];
  };
  // Deadline budgets are measured against the queue wait plus any armed
  // clock skew (faultpoint.hpp); `batch_start` anchors the mid-solve
  // cancellation deadlines below.
  const auto batch_start = std::chrono::steady_clock::now();
  const double skew = clock_skew_seconds();

  // Group requests with equal full keys (first-seen order): one solve per
  // group, everyone else rides the cache.
  struct Group {
    std::uint64_t hash = 0;
    std::vector<std::size_t> members;
    int priority = 0;
    double deadline = 0.0;
    std::size_t arrival = 0;
    /// Loosest member budget still unspent at batch_start, seconds.
    double remaining = 0.0;
  };
  std::vector<Group> groups;
  std::unordered_map<std::string_view, std::size_t> group_of;
  for (std::size_t i = 0; i < count; ++i) {
    // Dequeue-time deadline enforcement: a budget already spent while
    // queued is rejected before any work happens (deadline 0 expires
    // deterministically; NaN/negative fall through to admit's "malformed").
    if (deadline_expired(requests[i].deadline, queue_wait_of(i) + skew)) {
      metrics_.deadline_exceeded_total.add(1);
      staged[i] = deadline_exceeded_error(requests[i].deadline);
      continue;
    }
    util::Expected<Admitted> result = admit(requests[i]);
    if (!result.has_value()) {
      metrics_.rejected_total.add(1);
      staged[i] = result.error();
      continue;
    }
    metrics_.canonicalize.record(result->canonicalize_seconds);
    if (!queue_waits.empty()) metrics_.queue_wait.record(queue_waits[i]);
    admitted[i] = std::move(result).take();
    const double remaining = requests[i].deadline - queue_wait_of(i) - skew;
    const std::string_view key = admitted[i]->full_key;
    auto [it, inserted] = group_of.try_emplace(key, groups.size());
    if (inserted) {
      groups.push_back(Group{admitted[i]->full_hash, {i}, requests[i].priority,
                             requests[i].deadline, i, remaining});
    } else {
      Group& group = groups[it->second];
      group.members.push_back(i);
      group.priority = std::max(group.priority, requests[i].priority);
      group.deadline = std::min(group.deadline, requests[i].deadline);
      group.remaining = std::max(group.remaining, remaining);
    }
  }

  // Dispatch order: priority first, tighter deadline next, arrival last.
  // The pool claims task indices in increasing order, so this is the order
  // solves *start* in.
  std::stable_sort(groups.begin(), groups.end(), [](const Group& a, const Group& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    return a.arrival < b.arrival;
  });

  exec::ThreadPool::resolve(options_.pool).run(groups.size(), [&](std::size_t g) {
    const Group& group = groups[g];
    const std::size_t lead_index = group.members.front();
    const Admitted& lead = *admitted[lead_index];

    // Mid-solve cancellation is armed with the group's *loosest* surviving
    // budget: the solve is abandoned only once no member still wants the
    // answer. (Tighter members of a mixed group may therefore receive a
    // completed reply after their own budget — a finished answer is always
    // delivered.)
    util::CancelToken cancel;
    if (std::isfinite(group.remaining)) {
      cancel.set_deadline(batch_start +
                          std::chrono::duration_cast<util::CancelToken::Clock::duration>(
                              std::chrono::duration<double>(group.remaining)));
    }

    TraceSpans lead_spans;
    lead_spans.queue_wait_seconds = queue_wait_of(lead_index);
    lead_spans.canonicalize_seconds = lead.canonicalize_seconds;

    const auto probe_start = std::chrono::steady_clock::now();
    std::shared_ptr<const algorithms::FrontReport> report = cache_.find(group.hash, lead.full_key);
    lead_spans.cache_probe_seconds = elapsed_seconds(probe_start);
    metrics_.cache_probe.record(lead_spans.cache_probe_seconds);
    const bool lead_hit = report != nullptr;
    if (!report) {
      metrics_.solves_total.add(1);
      // Fault point: a stalled solver thread — how the tests drive the
      // deadline-cancellation path deterministically.
      if (const std::optional<double> stall = faultpoint::fire_value("broker.solve_stall")) {
        std::this_thread::sleep_for(std::chrono::duration<double>(*stall));
      }
      const auto start = std::chrono::steady_clock::now();
      util::Expected<algorithms::FrontReport> solved =
          solve_canonical(requests[lead_index], lead, &cancel);
      lead_spans.solve_seconds = elapsed_seconds(start);
      metrics_.solve.record(lead_spans.solve_seconds);
      if (!solved.has_value() && solved.error().code == "cancelled") {
        // The deadline passed mid-solve; the partial work is discarded so a
        // completed reply can never depend on cancellation timing.
        metrics_.cancelled_total.add(1);
        if (options_.degrade_on_deadline) {
          SolveRequest fallback_request = requests[lead_index];
          fallback_request.method = algorithms::Method::Heuristic;
          const auto fallback_start = std::chrono::steady_clock::now();
          util::Expected<algorithms::FrontReport> fallback =
              solve_canonical(fallback_request, lead, nullptr);
          lead_spans.solve_seconds += elapsed_seconds(fallback_start);
          if (fallback.has_value()) {
            const algorithms::FrontReport degraded_report = std::move(fallback).take();
            for (std::size_t k = 0; k < group.members.size(); ++k) {
              const std::size_t member = group.members[k];
              TraceSpans spans = lead_spans;
              if (k != 0) {
                spans.queue_wait_seconds = queue_wait_of(member);
                spans.canonicalize_seconds = admitted[member]->canonicalize_seconds;
              }
              Reply reply = make_reply(*admitted[member], degraded_report, false, spans);
              reply.degraded = true;
              metrics_.degraded_total.add(1);
              staged[member] = std::move(reply);
            }
            return;
          }
          // Even the heuristic fallback failed; report the deadline.
        }
        for (const std::size_t member : group.members) {
          metrics_.deadline_exceeded_total.add(1);
          staged[member] = deadline_exceeded_error(requests[member].deadline);
        }
        return;
      }
      if (!solved.has_value()) {
        // Errors are not cached: every member gets its own copy.
        metrics_.solve_errors_total.add(1);
        for (const std::size_t member : group.members) staged[member] = solved.error();
        return;
      }
      report = std::make_shared<const algorithms::FrontReport>(std::move(solved).take());
      cache_.insert(group.hash, lead.full_key, report);
      journal_insert(group.hash, lead.full_key, report);
    }
    staged[lead_index] = make_reply(lead, *report, lead_hit, lead_spans);

    // Deduped members re-probe so the hit counters reflect them; the local
    // report backstops the (theoretical) eviction race within one batch.
    for (std::size_t k = 1; k < group.members.size(); ++k) {
      const std::size_t member = group.members[k];
      metrics_.deduped_total.add(1);
      TraceSpans member_spans;
      member_spans.queue_wait_seconds = queue_wait_of(member);
      member_spans.canonicalize_seconds = admitted[member]->canonicalize_seconds;
      const auto member_probe_start = std::chrono::steady_clock::now();
      std::shared_ptr<const algorithms::FrontReport> cached =
          cache_.find(group.hash, admitted[member]->full_key);
      member_spans.cache_probe_seconds = elapsed_seconds(member_probe_start);
      metrics_.cache_probe.record(member_spans.cache_probe_seconds);
      staged[member] =
          make_reply(*admitted[member], cached ? *cached : *report, true, member_spans);
    }
  });

  std::vector<util::Expected<Reply>> replies;
  replies.reserve(count);
  for (std::size_t i = 0; i < count; ++i) replies.push_back(std::move(*staged[i]));
  return replies;
}

void Broker::resolve_ticket_locked(std::uint64_t id, util::Expected<Reply> reply) {
  if (waiter_ids_.contains(id)) {
    waiter_results_.emplace(id, std::move(reply));
  } else {
    completed_.push_back(Drained{id, std::move(reply)});
  }
}

void Broker::shed_overflow_locked() {
  const std::size_t high = options_.queue_high_watermark;
  if (high == 0 || queue_.size() <= high) return;
  std::size_t low = options_.queue_low_watermark;
  if (low == 0 || low > high) low = high / 2;
  while (queue_.size() > low) {
    // Victim: lowest priority, ties broken toward the latest deadline, then
    // the newest arrival — the work whose loss costs the least.
    const auto victim = std::min_element(
        queue_.begin(), queue_.end(), [](const Ticket& a, const Ticket& b) {
          if (a.request.priority != b.request.priority) {
            return a.request.priority < b.request.priority;
          }
          if (a.request.deadline != b.request.deadline) {
            return a.request.deadline > b.request.deadline;
          }
          return a.id > b.id;
        });
    metrics_.shed_total.add(1);
    resolve_ticket_locked(
        victim->id,
        util::make_error("overloaded",
                         "queue exceeded its high watermark (" + std::to_string(high) +
                             ") and this request was shed"));
    queue_.erase(victim);
  }
  // Shed waiters must wake up and find their "overloaded" result.
  queue_cv_.notify_all();
}

std::uint64_t Broker::submit(SolveRequest request) {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  const std::uint64_t id = next_ticket_++;
  if (shutting_down()) {
    resolve_ticket_locked(id, shutting_down_error());
    return id;
  }
  queue_.push_back(Ticket{id, std::move(request), std::chrono::steady_clock::now()});
  shed_overflow_locked();
  return id;
}

std::size_t Broker::pending() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

std::vector<Broker::Drained> Broker::solve_tickets(std::vector<Ticket> batch) {
  const auto drained_at = std::chrono::steady_clock::now();
  std::vector<SolveRequest> requests;
  std::vector<double> queue_waits;
  requests.reserve(batch.size());
  queue_waits.reserve(batch.size());
  for (Ticket& ticket : batch) {
    requests.push_back(std::move(ticket.request));
    queue_waits.push_back(
        std::chrono::duration<double>(drained_at - ticket.submitted).count());
  }
  std::vector<util::Expected<Reply>> replies = solve_batch_timed(requests, queue_waits);
  std::vector<Drained> drained;
  drained.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    drained.push_back(Drained{batch[i].id, std::move(replies[i])});
  }
  return drained;
}

std::vector<Broker::Drained> Broker::drain() {
  std::vector<Ticket> batch;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    batch.swap(queue_);
  }
  std::vector<Drained> solved = solve_tickets(std::move(batch));
  std::vector<Drained> drained;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    // Route `solve_batched` waiters' results to them; everything else —
    // including the backlog of already-resolved tickets (shed, shutdown) —
    // is this drain's to return.
    bool woke_waiter = false;
    for (Drained& d : solved) {
      if (waiter_ids_.contains(d.id)) {
        waiter_results_.emplace(d.id, std::move(d.reply));
        woke_waiter = true;
      } else {
        drained.push_back(std::move(d));
      }
    }
    for (Drained& d : completed_) drained.push_back(std::move(d));
    completed_.clear();
    if (woke_waiter) queue_cv_.notify_all();
  }
  std::sort(drained.begin(), drained.end(),
            [](const Drained& a, const Drained& b) { return a.id < b.id; });
  return drained;
}

util::Expected<Reply> Broker::solve_batched(const SolveRequest& request) {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  if (shutting_down()) return shutting_down_error();
  const std::uint64_t id = next_ticket_++;
  waiter_ids_.insert(id);
  queue_.push_back(Ticket{id, request, std::chrono::steady_clock::now()});
  shed_overflow_locked();  // may shed this very ticket: the loop below sees it
  while (true) {
    const auto ready = waiter_results_.find(id);
    if (ready != waiter_results_.end()) {
      util::Expected<Reply> reply = std::move(ready->second);
      waiter_results_.erase(ready);
      waiter_ids_.erase(id);
      return reply;
    }
    if (!draining_ && !queue_.empty()) {
      // Become the drainer: solve the whole queue segment — our ticket and
      // every concurrent session's — as one deduped, priority-ordered batch.
      draining_ = true;
      std::vector<Ticket> batch;
      batch.swap(queue_);
      lock.unlock();
      std::vector<Drained> solved = solve_tickets(std::move(batch));
      lock.lock();
      for (Drained& d : solved) resolve_ticket_locked(d.id, std::move(d.reply));
      draining_ = false;
      queue_cv_.notify_all();
    } else {
      queue_cv_.wait(lock);
    }
  }
}

void Broker::begin_shutdown() {
  shutting_down_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(queue_mutex_);
  queue_cv_.notify_all();
}

void Broker::journal_insert(std::uint64_t hash, const std::string& key,
                            const std::shared_ptr<const algorithms::FrontReport>& value) {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  if (!journal_) return;
  // Append failures never fail the reply: the solve succeeded and the
  // journal's append_errors counter (metrics_json) surfaces the degraded
  // durability.
  (void)journal_->append(FrontCache::ExportedEntry{hash, key, value});
}

bool Broker::journal_enabled() const {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  return journal_ != nullptr;
}

JournalStats Broker::journal_stats() const {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  return journal_ ? journal_->stats() : JournalStats{};
}

util::Expected<JournalStats> Broker::sync_journal() {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  if (!journal_) return JournalStats{};
  return journal_->sync();
}

util::Expected<Broker::RecoveryStats> Broker::recover(const std::string& snapshot_path,
                                                      const std::string& journal_path,
                                                      JournalOptions journal_options) {
  const auto start = std::chrono::steady_clock::now();
  RecoveryStats stats;
  if (!snapshot_path.empty() && ::access(snapshot_path.c_str(), F_OK) == 0) {
    util::Expected<SnapshotStats> loaded = load_snapshot(snapshot_path);
    if (!loaded.has_value()) return loaded.error();
    stats.snapshot_entries = loaded->entries;
    stats.snapshot_loaded = true;
  }
  if (!journal_path.empty()) {
    util::Expected<Journal::Opened> opened = Journal::open(journal_path, journal_options);
    if (!opened.has_value()) return opened.error();
    // Replay in append order: `insert` keeps the first value for a repeated
    // key but refreshes its recency, so snapshot entries overlaid with
    // journal records reproduce the never-crashed cache's contents and
    // per-shard LRU order.
    for (FrontCache::ExportedEntry& entry : opened.value().replayed.entries) {
      cache_.insert(entry.hash, std::move(entry.key), std::move(entry.value));
    }
    stats.journal_records = opened.value().replayed.entries.size();
    stats.torn_records = opened.value().replayed.torn_records;
    metrics_.journal_records_replayed.add(stats.journal_records);
    metrics_.journal_records_discarded_torn.add(stats.torn_records);
    std::lock_guard<std::mutex> lock(journal_mutex_);
    journal_ = std::move(opened.value().journal);
  }
  stats.seconds = elapsed_seconds(start);
  metrics_.recovery_seconds.set(stats.seconds);
  return stats;
}

std::string Broker::metrics_json() const {
  const CacheStats stats = cache_.stats();
  char cache_json[256];
  std::snprintf(cache_json, sizeof cache_json,
                "{\"cache\":{\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,\"entries\":%zu,"
                "\"hit_rate\":%.17g},",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.evictions), stats.entries,
                stats.hit_rate());
  const JournalStats journal = journal_stats();
  char journal_json[320];
  std::snprintf(journal_json, sizeof journal_json,
                "\"journal\":{\"enabled\":%s,\"records_appended\":%llu,\"fsyncs\":%llu,"
                "\"rotations\":%llu,\"append_errors\":%llu,\"file_bytes\":%llu,"
                "\"synced_bytes\":%llu},\"uptime_seconds\":%.17g,",
                journal_enabled() ? "true" : "false",
                static_cast<unsigned long long>(journal.records_appended),
                static_cast<unsigned long long>(journal.fsyncs),
                static_cast<unsigned long long>(journal.rotations),
                static_cast<unsigned long long>(journal.append_errors),
                static_cast<unsigned long long>(journal.file_bytes),
                static_cast<unsigned long long>(journal.synced_bytes),
                elapsed_seconds(started_));
  // metrics_.to_json() is a non-empty object; splice the cache and journal
  // sections in front of its first field.
  return cache_json + (journal_json + metrics_.to_json().substr(1));
}

util::Expected<SnapshotStats> Broker::save_snapshot(const std::string& path) {
  // Compaction: freeze journal appends across export + save + rotate so a
  // concurrent solve's record cannot land in the old journal after the
  // export missed it (see journal_mutex_ in broker.hpp).
  std::lock_guard<std::mutex> lock(journal_mutex_);
  util::Expected<SnapshotStats> saved = service::save_snapshot(cache_, path);
  if (!saved.has_value()) return saved;
  metrics_.snapshot_saves.add(1);
  metrics_.snapshot_entries_saved.add(saved->entries);
  if (journal_) {
    util::Expected<JournalStats> rotated = journal_->rotate();
    if (!rotated.has_value()) {
      return util::make_error(rotated.error().code,
                              "snapshot committed to '" + path +
                                  "' but the journal rotation failed (replay stays idempotent): " +
                                  rotated.error().message);
    }
  }
  return saved;
}

util::Expected<SnapshotStats> Broker::load_snapshot(const std::string& path) {
  util::Expected<SnapshotStats> loaded = service::load_snapshot(cache_, path);
  if (loaded.has_value()) {
    metrics_.snapshot_loads.add(1);
    metrics_.snapshot_entries_loaded.add(loaded->entries);
  }
  return loaded;
}

}  // namespace relap::service
