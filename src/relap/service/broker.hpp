#pragma once

/// \file broker.hpp
/// The solver service: a long-lived, multi-tenant broker over the relap
/// solver stack.
///
/// Request lifecycle:
///
///   1. **Admission.** Structural caps (`max_stages`/`max_processors`) reject
///      oversized instances with code "oversized"; nonsense scheduling or
///      solver parameters reject with "malformed". No library type is
///      constructed yet, so malformed requests can never trip an assert.
///   2. **Canonicalization** (canonical.hpp): validation, stage ordering,
///      exact power-of-two scale normalization and deterministic processor
///      relabeling. The broker *always* solves the canonical form — that is
///      what makes a warm reply bit-identical to a cold one under any
///      relabeling: both are the same denormalization of the same canonical
///      front.
///   3. **Cache probe** (cache.hpp). The key is the canonical instance bytes
///      plus the objective, method, normalized threshold and budget knobs —
///      everything that can change the solved front.
///   4. **Solve on miss** via the algorithms facade (`solve_min_fp_for_latency`,
///      `solve_min_latency_for_fp` or `solve_pareto_front`), on the broker's
///      deterministic pool, honoring the request's evaluation budget.
///      Infeasible / over-budget outcomes propagate as structured errors and
///      are *not* cached (they are cheap to re-derive and an error cached
///      under a budget would shadow a later, larger-budget success... the
///      budget is part of the key, but infeasibility is kept symmetric).
///   5. **Denormalization** back to the caller's labeling and units.
///
/// Every lifecycle step is measured twice: per request into `Reply::spans`
/// (request.hpp trace spans) and in aggregate into the broker's
/// `ServiceMetrics` registry (metrics.hpp, exported by `metrics_json`).
/// `save_snapshot`/`load_snapshot` persist the memo cache across process
/// runs (snapshot.hpp), so a restarted broker serves warm-from-snapshot
/// replies bit-identical to same-process warm replies. `recover` adds the
/// write-ahead journal (journal.hpp) on top: every cache-miss solve appends
/// one group-committed record, snapshot saves compact the journal away, and
/// a crashed process restarts with snapshot + journal replay — losing at
/// most the last `fsync_every - 1` solves.
///
/// Batches (`solve_batch`, or `submit` + `drain`) additionally dedupe: member
/// requests with equal full keys form one group, groups are ordered by
/// (priority desc, deadline asc, arrival), and only each group's lead solves;
/// the other members re-probe the cache and count as hits. Group dispatch
/// rides the same deterministic exec pool the solvers use — nested `run()` is
/// explicitly safe there.
///
/// Overload hardening (all failure modes are structured errors, never
/// asserts or hangs):
///
///   - **Deadlines are wall-clock budgets** (seconds from submit; see
///     request.hpp). A request whose budget is spent when its batch
///     dispatches rejects with "deadline-exceeded"; a running solve is
///     cooperatively cancelled (util/cancel.hpp tokens, polled at chunk
///     granularity in the solver stack) once the *loosest* surviving budget
///     in its dedup group passes — a solve is abandoned only when no member
///     still wants the answer. Cancelled solves are discarded, so completed
///     replies stay bit-identical.
///   - **Load shedding**: with `queue_high_watermark` set, a submit that
///     overflows the queue sheds the lowest-priority tickets (code
///     "overloaded") down to the low watermark.
///   - **Degrade mode**: with `degrade_on_deadline`, a deadline-cancelled
///     solve answers with a fast heuristic front instead of an error —
///     flagged `Reply::degraded`, `exact == false`, never cached.
///   - **Graceful drain**: after `begin_shutdown()`, new work is refused
///     with "shutting-down" while already-queued tickets keep draining.
///
/// `solve_batched` is the concurrent serving entry point: each session
/// submits into the shared queue and blocks for its own reply; one session
/// drains the batch for everyone (waiter/drainer), so concurrent tenants
/// coalesce into the same dedup + priority dispatch a single `solve_batch`
/// call gets.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relap/exec/thread_pool.hpp"
#include "relap/service/cache.hpp"
#include "relap/service/canonical.hpp"
#include "relap/service/journal.hpp"
#include "relap/service/metrics.hpp"
#include "relap/service/request.hpp"
#include "relap/service/snapshot.hpp"
#include "relap/util/cancel.hpp"

namespace relap::service {

struct BrokerOptions {
  /// Pool for batch dispatch and the solver hot paths; null uses
  /// `exec::ThreadPool::shared()`.
  exec::ThreadPool* pool = nullptr;
  FrontCache::Options cache;
  /// Admission caps: requests beyond these reject with code "oversized".
  std::size_t max_stages = 64;
  std::size_t max_processors = 64;
  /// Admission control for the submit/drain queue: when a submit pushes the
  /// pending count past the high watermark, the lowest-priority tickets
  /// (ties: latest deadline, then newest arrival) are shed with code
  /// "overloaded" until only the low watermark remain. 0 disables shedding;
  /// a zero low watermark defaults to half the high one.
  std::size_t queue_high_watermark = 0;
  std::size_t queue_low_watermark = 0;
  /// Serve deadline-cancelled solves with a fast heuristic front
  /// (`Reply::degraded`, `exact == false`, never cached) instead of a
  /// "deadline-exceeded" error.
  bool degrade_on_deadline = false;
};

class Broker {
 public:
  explicit Broker(BrokerOptions options = {});

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Serves one request synchronously.
  [[nodiscard]] util::Expected<Reply> solve(const SolveRequest& request);

  /// Serves a batch: replies in submission order, duplicates deduped onto one
  /// solve, groups dispatched over the pool in priority order.
  [[nodiscard]] std::vector<util::Expected<Reply>> solve_batch(
      std::span<const SolveRequest> requests);

  /// Serves one request through the shared submit/drain queue, blocking
  /// until its reply is ready. Concurrent callers coalesce: one caller
  /// drains the batch for everyone (dedup and priority dispatch apply
  /// *across* callers), the others wait on their tickets. This is the
  /// concurrent TCP front's entry point. Shed / shutdown outcomes surface
  /// as "overloaded" / "shutting-down" errors.
  [[nodiscard]] util::Expected<Reply> solve_batched(const SolveRequest& request);

  /// Queues a request for the next `drain()`; returns its ticket id. After
  /// `begin_shutdown()` the ticket resolves to a "shutting-down" error; a
  /// submit that overflows the high watermark sheds (see BrokerOptions).
  std::uint64_t submit(SolveRequest request);

  /// Number of submitted, not-yet-drained requests.
  [[nodiscard]] std::size_t pending() const;

  struct Drained {
    std::uint64_t id = 0;
    util::Expected<Reply> reply;
  };

  /// Serves every queued request as one batch; results carry the ticket ids
  /// handed out by `submit`, in submission order (sorted by id). Also
  /// delivers the backlog: tickets already resolved without a solve (shed
  /// "overloaded", post-shutdown "shutting-down"). Tickets a concurrent
  /// `solve_batched` drainer is solving right now surface on a later drain.
  [[nodiscard]] std::vector<Drained> drain();

  /// Graceful drain: after this, `solve`/`solve_batch`/`solve_batched`
  /// refuse with code "shutting-down" and new submits resolve to the same
  /// error, while already-queued tickets keep draining normally.
  void begin_shutdown();
  [[nodiscard]] bool shutting_down() const {
    return shutting_down_.load(std::memory_order_acquire);
  }

  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  void clear_cache() { cache_.clear(); }

  /// Aggregate observability: every counter/histogram the broker records
  /// (metrics.hpp). Live — reading does not reset anything.
  [[nodiscard]] const ServiceMetrics& metrics() const { return metrics_; }

  /// One-line JSON document combining `metrics()` with the cache counters,
  /// journal counters and process uptime:
  /// {"cache":{...},"journal":{...},"uptime_seconds":S,...service fields...}.
  [[nodiscard]] std::string metrics_json() const;

  /// Persists the memo cache to `path` (snapshot.hpp; crash-safe
  /// temp-then-rename, version- and build-stamped). With a journal attached
  /// this is *compaction*: once the snapshot commits, the journal is
  /// atomically rotated back to empty — its records are all inside the
  /// snapshot now. A snapshot failure leaves the journal untouched; a
  /// rotation failure reports "io" but the snapshot is committed and a
  /// replay of the stale journal over it is idempotent, so no outcome loses
  /// data.
  [[nodiscard]] util::Expected<SnapshotStats> save_snapshot(const std::string& path);

  /// Warm-starts the memo cache from a snapshot. Version-mismatched or
  /// corrupted snapshots are rejected with structured errors and leave the
  /// cache untouched. Replies served from restored entries are bit-identical
  /// to same-process warm replies: the snapshot round-trips the solved
  /// fronts' exact bit patterns and the broker denormalizes per request
  /// either way.
  [[nodiscard]] util::Expected<SnapshotStats> load_snapshot(const std::string& path);

  struct RecoveryStats {
    std::size_t snapshot_entries = 0;   ///< entries restored from the snapshot
    std::uint64_t journal_records = 0;  ///< intact journal records replayed on top
    std::uint64_t torn_records = 0;     ///< discarded torn tail (0 or 1)
    bool snapshot_loaded = false;       ///< false when no snapshot file existed
    double seconds = 0.0;               ///< recovery wall time
  };

  /// Crash recovery in one step: loads the snapshot at `snapshot_path` (a
  /// missing file is a cold start, not an error), replays the journal at
  /// `journal_path` on top (idempotent re-inserts in append order, so
  /// contents *and* LRU recency match the never-crashed cache), truncates
  /// the journal's torn tail, and attaches the journal so every subsequent
  /// cache-miss solve appends to it. Either path may be empty to skip that
  /// half. Errors ("io", "snapshot-*", "journal-*") leave the cache in
  /// whatever state the completed steps produced and no journal attached.
  [[nodiscard]] util::Expected<RecoveryStats> recover(const std::string& snapshot_path,
                                                      const std::string& journal_path,
                                                      JournalOptions journal_options = {});

  /// True once `recover` attached a journal: cache-miss solves append.
  [[nodiscard]] bool journal_enabled() const;

  /// Live journal counters (zeroes when no journal is attached).
  [[nodiscard]] JournalStats journal_stats() const;

  /// Forces the journal's group commit early (clean-shutdown durability).
  /// No-op success when no journal is attached.
  [[nodiscard]] util::Expected<JournalStats> sync_journal();

 private:
  /// A request that passed admission + canonicalization, ready to dispatch.
  struct Admitted {
    CanonicalInstance canonical;
    std::string full_key;        ///< canonical bytes + objective/knob suffix
    std::uint64_t full_hash = 0;
    double threshold_canonical = 0.0;
    double canonicalize_seconds = 0.0;
  };

  [[nodiscard]] util::Expected<Admitted> admit(const SolveRequest& request) const;
  [[nodiscard]] util::Expected<algorithms::FrontReport> solve_canonical(
      const SolveRequest& request, const Admitted& admitted,
      const util::CancelToken* cancel) const;
  [[nodiscard]] Reply make_reply(const Admitted& admitted, const algorithms::FrontReport& report,
                                 bool cache_hit, TraceSpans spans) const;
  /// Shared batch path; `queue_waits` (empty, or one value per request)
  /// carries the submit -> drain delay of queued requests into spans and
  /// metrics, and is what dequeue-time deadline enforcement measures
  /// budgets against.
  [[nodiscard]] std::vector<util::Expected<Reply>> solve_batch_timed(
      std::span<const SolveRequest> requests, std::span<const double> queue_waits);

  /// Appends a freshly solved entry to the journal, if one is attached.
  /// Append failures are absorbed (the reply already exists and the
  /// journal's own `append_errors` counter surfaces the condition).
  void journal_insert(std::uint64_t hash, const std::string& key,
                      const std::shared_ptr<const algorithms::FrontReport>& value);

  BrokerOptions options_;
  FrontCache cache_;
  mutable ServiceMetrics metrics_;
  const std::chrono::steady_clock::time_point started_ = std::chrono::steady_clock::now();

  /// Guards the journal *and* the export-save-rotate compaction window: an
  /// append always follows its cache insert, so holding this across
  /// export+rotate means a concurrent solve's record lands either in the
  /// snapshot (insert before export) or in the fresh journal (append after
  /// rotate) — never rotated away unsaved.
  mutable std::mutex journal_mutex_;
  std::unique_ptr<Journal> journal_;

  struct Ticket {
    std::uint64_t id = 0;
    SolveRequest request;
    std::chrono::steady_clock::time_point submitted;
  };

  /// Solves a swapped-out queue segment; caller routes the results.
  [[nodiscard]] std::vector<Drained> solve_tickets(std::vector<Ticket> batch);
  /// Sheds down to the low watermark; requires `queue_mutex_` held.
  void shed_overflow_locked();
  /// Resolves a ticket without solving (shed / shutdown); requires
  /// `queue_mutex_` held.
  void resolve_ticket_locked(std::uint64_t id, util::Expected<Reply> reply);

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::vector<Ticket> queue_;
  /// Resolved non-waiter tickets awaiting the next `drain()`.
  std::vector<Drained> completed_;
  /// `solve_batched` coordination: callers park their ticket id in
  /// `waiter_ids_` and collect the reply from `waiter_results_`; at most one
  /// caller drains at a time (`draining_`).
  std::unordered_set<std::uint64_t> waiter_ids_;
  std::unordered_map<std::uint64_t, util::Expected<Reply>> waiter_results_;
  bool draining_ = false;
  std::uint64_t next_ticket_ = 1;
  std::atomic<bool> shutting_down_{false};
};

}  // namespace relap::service
