#pragma once

/// \file canonical.hpp
/// Instance canonicalization: validation, deterministic processor
/// relabeling and exact scale normalization.
///
/// The broker's memo cache only pays off if near-identical requests collide
/// on one key. Two presentations of the same problem can differ in three
/// harmless ways, and canonicalization quotients all of them out:
///
///  * **Stage record order.** Stage records carry semantic positions; the
///    canonical form stores them in position order.
///  * **Processor labels.** Processor identity is pure naming. The canonical
///    form orders processors by a label-independent signature over their
///    normalized compute/transfer/failure columns — (speed, failure prob,
///    P_in/P_out bandwidths), refined with link-matrix neighborhoods
///    (Weisfeiler-Leman style color refinement) on fully heterogeneous
///    platforms. Signature ties that refinement cannot split fall back to
///    presentation order: for homogeneous-link platforms such processors are
///    genuinely interchangeable (identical canonical bytes either way); on
///    heterogeneous links a tie can make two presentations canonicalize
///    differently, which costs a cache hit but never correctness.
///  * **Units.** Work, data and time units are free parameters. Scales are
///    extracted as exact powers of two (the largest 2^k <= max of each
///    column), so normalization divides by powers of two — bit-exact, no
///    rounding anywhere. Latencies denormalize by one exact multiplication,
///    which is why a cache hit reproduces a cold solve bit for bit, and why
///    power-of-two rescalings of an instance share a canonical form. General
///    rescalings still solve correctly; they just key separately.
///
/// The canonical form is hashed (FNV-1a over the io key-byte serialization)
/// into the cache key; collisions are resolved by full byte equality in
/// service/cache.hpp.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "relap/algorithms/exhaustive.hpp"
#include "relap/service/request.hpp"

namespace relap::service {

/// A validated, canonicalized instance plus everything needed to map
/// canonical-form results back to the caller's labeling and units.
struct CanonicalInstance {
  /// Canonical pipeline: stages in position order, work/data normalized.
  pipeline::Pipeline pipeline;
  /// Canonical platform: processors in signature order, columns normalized.
  platform::Platform platform;
  /// Latency conversion: latency_canonical = latency_caller * time_scale.
  /// Always an exact power of two, so the conversion is bit-exact both ways.
  double time_scale = 1.0;
  /// canonical_to_caller[c] = caller storage index of canonical processor c.
  std::vector<std::size_t> canonical_to_caller;
  /// io::append_instance_key_bytes of the canonical form.
  std::string key_bytes;
  /// FNV-1a of `key_bytes` — equal across relabelings and power-of-two
  /// rescalings of one instance.
  std::uint64_t key_hash = 0;
};

/// Validates `instance` and produces its canonical form. Malformed input
/// (empty pipeline, zero-processor platform, bad position permutation,
/// non-finite or out-of-range values, ragged link rows) yields a structured
/// error with code "malformed" — never an assert.
[[nodiscard]] util::Expected<CanonicalInstance> canonicalize(const InstanceData& instance);

/// Maps a front solved on the canonical form back to the caller's labeling
/// and units: latencies divide by `time_scale` (exact), failure
/// probabilities are dimensionless, interval boundaries are already in
/// semantic stage positions, and replica groups map through
/// `canonical_to_caller` (re-sorted ascending in caller ids).
[[nodiscard]] std::vector<algorithms::ParetoSolution> denormalize_front(
    const CanonicalInstance& canonical, std::span<const algorithms::ParetoSolution> front);

}  // namespace relap::service
